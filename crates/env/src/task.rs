//! The task registry (paper Table 10): 21 tasks across four benchmarks,
//! each with its reference plan (the ground truth the planner is trained
//! to produce).

use crate::subtask::{ArmObject, ArmTarget, Subtask};
use std::fmt;

/// Benchmark a task belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Open-world crafting (JARVIS-1 / Minecraft analog).
    Minecraft,
    /// Tabletop manipulation (OpenVLA platform).
    Libero,
    /// Tabletop manipulation (RoboFlamingo platform).
    Calvin,
    /// Tabletop manipulation (Octo / RT-1 platforms).
    Oxe,
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Benchmark::Minecraft => "Minecraft",
            Benchmark::Libero => "LIBERO",
            Benchmark::Calvin => "CALVIN",
            Benchmark::Oxe => "OXE",
        };
        f.write_str(s)
    }
}

/// Crafting-world biome presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Biome {
    /// Dense trees.
    Jungle,
    /// Sparse trees, animals, tall grass.
    Plains,
    /// Scattered trees and grass.
    Savanna,
    /// Many trees.
    Forest,
}

/// All evaluated tasks, keyed by the paper's single-word abbreviations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskId {
    /// Obtain a wooden pickaxe in a jungle.
    Wooden,
    /// Obtain a stone pickaxe in the plains.
    Stone,
    /// Obtain charcoal in the plains.
    Charcoal,
    /// Obtain a cooked chicken in the plains.
    Chicken,
    /// Obtain coal in a savanna.
    Coal,
    /// Obtain an iron sword in the plains.
    Iron,
    /// Obtain 5 white wool in the plains.
    Wool,
    /// Obtain 10 wheat seeds in a savanna.
    Seed,
    /// Obtain 10 logs in a forest.
    Log,
    /// Put wine bottle on top of cabinet.
    Wine,
    /// Pick up alphabet soup and place it in basket.
    Alphabet,
    /// Pick up bbq sauce and place it in basket.
    Bbq,
    /// Press the button to turn off the LED light.
    Button,
    /// Slide the block so it falls into the drawer.
    Block,
    /// Pull the handle to open the drawer.
    Handle,
    /// Put eggplant in basket.
    Eggplant,
    /// Grasp single opened coke can.
    Coke,
    /// Put carrot on plate.
    Carrot,
    /// Open middle drawer.
    Open,
    /// Move near google baked tex.
    Move,
    /// Place into closed top drawer.
    Place,
}

impl TaskId {
    /// All tasks, in Table 10 order.
    pub const ALL: [TaskId; 21] = [
        TaskId::Wooden,
        TaskId::Stone,
        TaskId::Charcoal,
        TaskId::Chicken,
        TaskId::Coal,
        TaskId::Iron,
        TaskId::Wool,
        TaskId::Seed,
        TaskId::Log,
        TaskId::Wine,
        TaskId::Alphabet,
        TaskId::Bbq,
        TaskId::Button,
        TaskId::Block,
        TaskId::Handle,
        TaskId::Eggplant,
        TaskId::Coke,
        TaskId::Carrot,
        TaskId::Open,
        TaskId::Move,
        TaskId::Place,
    ];

    /// The eight overall-evaluation tasks of Fig. 16.
    pub const OVERALL_EIGHT: [TaskId; 8] = [
        TaskId::Wooden,
        TaskId::Stone,
        TaskId::Charcoal,
        TaskId::Chicken,
        TaskId::Coal,
        TaskId::Iron,
        TaskId::Wool,
        TaskId::Seed,
    ];

    /// Stable token id (offset into the planner's task-token range).
    pub fn token_id(self) -> usize {
        TaskId::ALL.iter().position(|&t| t == self).expect("in ALL")
    }

    /// Task from a token id.
    pub fn from_token_id(id: usize) -> Option<TaskId> {
        TaskId::ALL.get(id).copied()
    }

    /// Which benchmark this task belongs to.
    pub fn benchmark(self) -> Benchmark {
        use TaskId::*;
        match self {
            Wooden | Stone | Charcoal | Chicken | Coal | Iron | Wool | Seed | Log => {
                Benchmark::Minecraft
            }
            Wine | Alphabet | Bbq => Benchmark::Libero,
            Button | Block | Handle => Benchmark::Calvin,
            Eggplant | Coke | Carrot | Open | Move | Place => Benchmark::Oxe,
        }
    }

    /// Crafting-world biome (None for manipulation tasks).
    pub fn biome(self) -> Option<Biome> {
        use TaskId::*;
        match self {
            Wooden => Some(Biome::Jungle),
            Stone | Charcoal | Chicken | Iron | Wool => Some(Biome::Plains),
            Coal | Seed => Some(Biome::Savanna),
            Log => Some(Biome::Forest),
            _ => None,
        }
    }

    /// Table 10 description.
    pub fn description(self) -> &'static str {
        use TaskId::*;
        match self {
            Wooden => "Obtain a wooden pickaxe in a jungle",
            Stone => "Obtain a stone pickaxe in the plains",
            Charcoal => "Obtain charcoal in the plains",
            Chicken => "Obtain a cooked chicken in the plains",
            Coal => "Obtain coal in a savanna",
            Iron => "Obtain an iron sword in the plains",
            Wool => "Obtain 5 white wool in the plains",
            Seed => "Obtain 10 wheat seeds in a savanna",
            Log => "Obtain 10 logs in a forest",
            Wine => "Put wine bottle on top of cabinet",
            Alphabet => "Pick up alphabet soup and place it in basket",
            Bbq => "Pick up bbq sauce and place it in basket",
            Button => "Press the button to turn off the LED light",
            Block => "Slide the block that it falls into the drawer",
            Handle => "Pull the handle to open the drawer",
            Eggplant => "Put eggplant in basket",
            Coke => "Grasp single opened coke can",
            Carrot => "Put carrot on plate",
            Open => "Open middle drawer",
            Move => "Move near google baked tex",
            Place => "Place into closed top drawer",
        }
    }

    /// Paper abbreviation (teletype word).
    pub fn abbrev(self) -> &'static str {
        use TaskId::*;
        match self {
            Wooden => "wooden",
            Stone => "stone",
            Charcoal => "charcoal",
            Chicken => "chicken",
            Coal => "coal",
            Iron => "iron",
            Wool => "wool",
            Seed => "seed",
            Log => "log",
            Wine => "wine",
            Alphabet => "alphabet",
            Bbq => "bbq",
            Button => "button",
            Block => "block",
            Handle => "handle",
            Eggplant => "eggplant",
            Coke => "coke",
            Carrot => "carrot",
            Open => "open",
            Move => "move",
            Place => "place",
        }
    }

    /// The ground-truth plan for this task.
    pub fn reference_plan(self) -> Vec<Subtask> {
        use Subtask::*;
        use TaskId::*;
        match self {
            Wooden => vec![
                MineLog(3),
                CraftPlanks(9),
                CraftSticks(4),
                CraftTable,
                CraftWoodenPickaxe,
            ],
            Stone => vec![
                MineLog(3),
                CraftPlanks(9),
                CraftSticks(6),
                CraftTable,
                CraftWoodenPickaxe,
                MineStone(3),
                CraftStonePickaxe,
            ],
            Charcoal => vec![
                MineLog(4),
                CraftPlanks(9),
                CraftSticks(4),
                CraftTable,
                CraftWoodenPickaxe,
                MineStone(8),
                CraftFurnace,
                SmeltCharcoal(1),
            ],
            Chicken => vec![
                MineLog(3),
                CraftPlanks(9),
                CraftSticks(4),
                CraftTable,
                CraftWoodenPickaxe,
                MineStone(8),
                CraftFurnace,
                HuntChicken(1),
                CookChicken(1),
            ],
            Coal => vec![
                MineLog(3),
                CraftPlanks(9),
                CraftSticks(4),
                CraftTable,
                CraftWoodenPickaxe,
                MineCoal(1),
            ],
            Iron => vec![
                MineLog(4),
                CraftPlanks(12),
                CraftSticks(6),
                CraftTable,
                CraftWoodenPickaxe,
                MineStone(11),
                CraftStonePickaxe,
                CraftFurnace,
                MineIron(2),
                SmeltIron(2),
                CraftIronSword,
            ],
            Wool => vec![ShearWool(5)],
            Seed => vec![CollectSeeds(10)],
            Log => vec![MineLog(10)],
            Wine => vec![Pick(ArmObject::Wine), PlaceAt(ArmTarget::CabinetTop)],
            Alphabet => vec![Pick(ArmObject::Soup), PlaceAt(ArmTarget::Basket)],
            Bbq => vec![Pick(ArmObject::Bbq), PlaceAt(ArmTarget::Basket)],
            Button => vec![PressButton],
            Block => vec![SlideBlock],
            Handle => vec![PullHandle],
            Eggplant => vec![Pick(ArmObject::Eggplant), PlaceAt(ArmTarget::Basket)],
            Coke => vec![Pick(ArmObject::Coke)],
            Carrot => vec![Pick(ArmObject::Carrot), PlaceAt(ArmTarget::Plate)],
            Open => vec![PullDrawer],
            Move => vec![Pick(ArmObject::Widget), PlaceAt(ArmTarget::Zone)],
            Place => vec![
                PullDrawer,
                Pick(ArmObject::Widget),
                PlaceAt(ArmTarget::DrawerSpot),
            ],
        }
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::Inventory;
    use crate::recipe::Station;

    #[test]
    fn all_tasks_have_plans_in_vocab() {
        for task in TaskId::ALL {
            for st in task.reference_plan() {
                assert!(
                    st.token_id().is_some(),
                    "{task}: plan entry {st:?} missing from SUBTASK_VOCAB"
                );
            }
        }
    }

    #[test]
    fn token_ids_roundtrip() {
        for task in TaskId::ALL {
            assert_eq!(TaskId::from_token_id(task.token_id()), Some(task));
        }
    }

    #[test]
    fn craftworld_plans_are_materially_feasible() {
        // Simulate the crafting math of every Minecraft plan: gathering
        // subtasks grant items, crafting subtasks must be executable.
        for task in TaskId::ALL {
            if task.benchmark() != Benchmark::Minecraft {
                continue;
            }
            let mut inv = Inventory::new();
            for st in task.reference_plan() {
                match st {
                    Subtask::MineLog(n) => inv.add(crate::item::Item::Log, n),
                    Subtask::MineStone(n) => inv.add(crate::item::Item::Cobblestone, n),
                    Subtask::MineCoal(n) => inv.add(crate::item::Item::Coal, n),
                    Subtask::MineIron(n) => inv.add(crate::item::Item::IronOre, n),
                    Subtask::HuntChicken(n) => inv.add(crate::item::Item::RawChicken, n),
                    Subtask::ShearWool(n) => inv.add(crate::item::Item::Wool, n),
                    Subtask::CollectSeeds(n) => inv.add(crate::item::Item::WheatSeeds, n),
                    _ => {
                        let recipe = st
                            .craft_recipe()
                            .unwrap_or_else(|| panic!("{task}: {st:?} has no recipe"));
                        let mut guard = 0;
                        while !st.goal_met(&inv) {
                            assert!(
                                recipe.craft(&mut inv),
                                "{task}: cannot craft for {st:?} (inv: {inv:?})"
                            );
                            guard += 1;
                            assert!(guard < 32, "{task}: runaway crafting for {st:?}");
                        }
                    }
                }
                assert!(
                    st.goal_met(&inv),
                    "{task}: {st:?} goal unmet after execution"
                );
            }
        }
    }

    #[test]
    fn furnace_tasks_keep_fuel_in_reserve() {
        // Every task that smelts must finish its plan with fuel available at
        // the smelt step — the feasibility test above exercises it, but we
        // additionally check the recipe is a furnace recipe.
        for task in [TaskId::Charcoal, TaskId::Chicken, TaskId::Iron] {
            let has_smelt = task.reference_plan().iter().any(|st| {
                st.craft_recipe()
                    .map(|r| r.station == Station::Furnace)
                    .unwrap_or(false)
            });
            assert!(has_smelt, "{task} should smelt");
        }
    }

    #[test]
    fn biomes_match_descriptions() {
        assert_eq!(TaskId::Wooden.biome(), Some(Biome::Jungle));
        assert_eq!(TaskId::Log.biome(), Some(Biome::Forest));
        assert_eq!(TaskId::Seed.biome(), Some(Biome::Savanna));
        assert_eq!(TaskId::Wine.biome(), None);
    }

    #[test]
    fn overall_eight_are_minecraft_tasks() {
        for t in TaskId::OVERALL_EIGHT {
            assert_eq!(t.benchmark(), Benchmark::Minecraft);
        }
    }

    #[test]
    fn plan_lengths_span_simple_to_complex() {
        assert_eq!(TaskId::Log.reference_plan().len(), 1);
        assert!(TaskId::Iron.reference_plan().len() >= 10);
    }
}
