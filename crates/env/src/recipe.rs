//! Crafting and smelting recipes.
//!
//! Recipes are executed by the `Craft` action; which recipe runs is
//! determined by the agent's current subtask (macro-crafting conditioned on
//! the instruction, mirroring how JARVIS-1's controller receives a crafting
//! subtask prompt).

use crate::item::{Inventory, Item};

/// Station required by a recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Station {
    /// No station needed (in-hand crafting).
    None,
    /// Requires a crafting table in the inventory.
    Table,
    /// Requires a furnace in the inventory plus one unit of fuel.
    Furnace,
}

/// One crafting/smelting recipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recipe {
    /// Consumed items.
    pub inputs: &'static [(Item, u32)],
    /// Produced item and count.
    pub output: (Item, u32),
    /// Station requirement.
    pub station: Station,
}

impl Recipe {
    /// Looks up the recipe that produces `item`, if any.
    pub fn for_output(item: Item) -> Option<&'static Recipe> {
        ALL_RECIPES.iter().find(|r| r.output.0 == item)
    }

    /// Whether `inv` can execute this recipe right now.
    pub fn can_craft(&self, inv: &Inventory) -> bool {
        let station_ok = match self.station {
            Station::None => true,
            Station::Table => inv.has(Item::CraftingTable),
            Station::Furnace => inv.has(Item::Furnace) && inv.has_fuel(),
        };
        station_ok && self.inputs.iter().all(|&(item, n)| inv.count(item) >= n)
    }

    /// Executes the recipe against `inv`; returns `false` (leaving the
    /// inventory untouched) if requirements are not met.
    pub fn craft(&self, inv: &mut Inventory) -> bool {
        if !self.can_craft(inv) {
            return false;
        }
        if self.station == Station::Furnace && !inv.consume_fuel() {
            return false;
        }
        for &(item, n) in self.inputs {
            let removed = inv.remove(item, n);
            debug_assert!(removed, "can_craft checked availability");
        }
        inv.add(self.output.0, self.output.1);
        true
    }
}

/// The full recipe book.
pub static ALL_RECIPES: &[Recipe] = &[
    Recipe {
        inputs: &[(Item::Log, 1)],
        output: (Item::Plank, 4),
        station: Station::None,
    },
    Recipe {
        inputs: &[(Item::Plank, 2)],
        output: (Item::Stick, 4),
        station: Station::None,
    },
    Recipe {
        inputs: &[(Item::Plank, 4)],
        output: (Item::CraftingTable, 1),
        station: Station::None,
    },
    Recipe {
        inputs: &[(Item::Plank, 3), (Item::Stick, 2)],
        output: (Item::WoodenPickaxe, 1),
        station: Station::Table,
    },
    Recipe {
        inputs: &[(Item::Cobblestone, 3), (Item::Stick, 2)],
        output: (Item::StonePickaxe, 1),
        station: Station::Table,
    },
    Recipe {
        inputs: &[(Item::Cobblestone, 8)],
        output: (Item::Furnace, 1),
        station: Station::Table,
    },
    Recipe {
        inputs: &[(Item::Log, 1)],
        output: (Item::Charcoal, 1),
        station: Station::Furnace,
    },
    Recipe {
        inputs: &[(Item::IronOre, 1)],
        output: (Item::IronIngot, 1),
        station: Station::Furnace,
    },
    Recipe {
        inputs: &[(Item::RawChicken, 1)],
        output: (Item::CookedChicken, 1),
        station: Station::Furnace,
    },
    Recipe {
        inputs: &[(Item::IronIngot, 2), (Item::Stick, 1)],
        output: (Item::IronSword, 1),
        station: Station::Table,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_craftable_item_has_one_recipe() {
        for item in [
            Item::Plank,
            Item::Stick,
            Item::CraftingTable,
            Item::WoodenPickaxe,
            Item::StonePickaxe,
            Item::Furnace,
            Item::Charcoal,
            Item::IronIngot,
            Item::CookedChicken,
            Item::IronSword,
        ] {
            assert!(Recipe::for_output(item).is_some(), "missing recipe: {item}");
        }
        assert!(Recipe::for_output(Item::Log).is_none());
    }

    #[test]
    fn planks_from_logs() {
        let mut inv = Inventory::new();
        inv.add(Item::Log, 2);
        let recipe = Recipe::for_output(Item::Plank).unwrap();
        assert!(recipe.craft(&mut inv));
        assert_eq!(inv.count(Item::Plank), 4);
        assert_eq!(inv.count(Item::Log), 1);
    }

    #[test]
    fn table_requirement_blocks_crafting() {
        let mut inv = Inventory::new();
        inv.add(Item::Plank, 3);
        inv.add(Item::Stick, 2);
        let recipe = Recipe::for_output(Item::WoodenPickaxe).unwrap();
        assert!(!recipe.craft(&mut inv), "no table yet");
        inv.add(Item::CraftingTable, 1);
        assert!(recipe.craft(&mut inv));
        assert!(inv.has(Item::WoodenPickaxe));
        assert!(!inv.has(Item::Plank), "inputs consumed");
    }

    #[test]
    fn smelting_consumes_fuel() {
        let mut inv = Inventory::new();
        inv.add(Item::Furnace, 1);
        inv.add(Item::RawChicken, 1);
        let recipe = Recipe::for_output(Item::CookedChicken).unwrap();
        assert!(!recipe.craft(&mut inv), "no fuel");
        inv.add(Item::Plank, 1);
        assert!(recipe.craft(&mut inv));
        assert!(inv.has(Item::CookedChicken));
        assert!(!inv.has(Item::Plank), "fuel burned");
        assert!(inv.has(Item::Furnace), "stations persist");
    }

    #[test]
    fn failed_craft_leaves_inventory_untouched() {
        let mut inv = Inventory::new();
        inv.add(Item::Plank, 1);
        let recipe = Recipe::for_output(Item::CraftingTable).unwrap();
        assert!(!recipe.craft(&mut inv));
        assert_eq!(inv.count(Item::Plank), 1);
    }
}
