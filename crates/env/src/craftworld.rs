//! The crafting world: a Minecraft-lite grid environment.
//!
//! Reproduces the *task structure* that drives the paper's application-level
//! characterization (Sec. 4.2): biome-dependent resource layouts, crafting
//! chains with tool gating, roaming animals, and — critically — interaction
//! *streaks*: chopping a tree takes several consecutive `Interact` actions
//! on the same cell, and any other action resets the streak. That is what
//! makes sequential subtasks (`log`, `stone`) brittle under bit errors
//! while stochastic subtasks (`chicken`, `wool`) degrade gracefully
//! (Fig. 6), and what makes the execution phase of a subtask more critical
//! than its exploration phase (Fig. 7).

use crate::item::{Inventory, Item};
use crate::observe::{cell_id, Observation, STATUS_DIMS, VIEW_CELLS, VIEW_RADIUS, VIEW_SIZE};
use crate::subtask::Subtask;
use crate::task::{Biome, TaskId};
use crate::types::{Action, Pos};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Grid edge length.
pub const WORLD_SIZE: i32 = 28;

/// Terrain cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// Walkable ground.
    Grass,
    /// Walkable; yields wheat seeds when interacted with.
    TallGrass,
    /// Obstacle; yields a log after 3 consecutive interacts.
    Tree,
    /// Obstacle; yields cobblestone after 2 interacts (wooden pickaxe).
    Stone,
    /// Obstacle; yields coal after 2 interacts (wooden pickaxe).
    CoalOre,
    /// Obstacle; yields iron ore after 3 interacts (stone pickaxe).
    IronOre,
    /// Obstacle.
    Water,
}

impl Cell {
    /// Whether the agent can stand on this cell.
    pub fn passable(self) -> bool {
        matches!(self, Cell::Grass | Cell::TallGrass)
    }

    /// View id for this cell.
    fn view_id(self) -> u8 {
        match self {
            Cell::Grass => cell_id::GROUND,
            Cell::TallGrass => cell_id::TALL_GRASS,
            Cell::Tree => cell_id::TREE,
            Cell::Stone => cell_id::STONE,
            Cell::CoalOre => cell_id::COAL_ORE,
            Cell::IronOre => cell_id::IRON_ORE,
            Cell::Water => cell_id::WATER,
        }
    }
}

/// Animal species.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnimalKind {
    /// Huntable; drops raw chicken.
    Chicken,
    /// Shearable; yields wool, then regrows.
    Sheep,
}

/// A roaming animal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Animal {
    kind: AnimalKind,
    pos: Pos,
    /// Step count until a sheep's wool regrows (0 = shearable).
    sheared_until: u64,
}

/// The crafting-world environment for one task trial.
#[derive(Debug, Clone)]
pub struct CraftWorld {
    task: TaskId,
    cells: Vec<Cell>,
    agent: Pos,
    animals: Vec<Animal>,
    inv: Inventory,
    subtask: Subtask,
    interact_target: Option<Pos>,
    interact_progress: u32,
    steps: u64,
    rng: StdRng,
}

impl CraftWorld {
    /// Generates a world for `task` with the trial seed.
    ///
    /// # Panics
    ///
    /// Panics if `task` is not a crafting-world (Minecraft) task.
    pub fn new(task: TaskId, seed: u64) -> Self {
        let biome = task
            .biome()
            .unwrap_or_else(|| panic!("{task} is not a crafting-world task"));
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
        let mut cells = vec![Cell::Grass; (WORLD_SIZE * WORLD_SIZE) as usize];

        // Mountain strip along the bottom: stone with embedded ores.
        for y in (WORLD_SIZE - 4)..WORLD_SIZE {
            for x in 0..WORLD_SIZE {
                // Leave a walkable corridor into the strip.
                if y == WORLD_SIZE - 4 && x % 5 == 2 {
                    continue;
                }
                cells[(y * WORLD_SIZE + x) as usize] = Cell::Stone;
            }
        }
        let place_ore = |cells: &mut Vec<Cell>, ore: Cell, count: usize, rng: &mut StdRng| {
            let mut placed = 0;
            let mut guard = 0;
            while placed < count && guard < 500 {
                guard += 1;
                let x = rng.random_range(0..WORLD_SIZE);
                let y = rng.random_range((WORLD_SIZE - 3)..WORLD_SIZE);
                let idx = (y * WORLD_SIZE + x) as usize;
                if cells[idx] == Cell::Stone {
                    cells[idx] = ore;
                    placed += 1;
                }
            }
        };
        place_ore(&mut cells, Cell::CoalOre, 4, &mut rng);
        place_ore(&mut cells, Cell::IronOre, 4, &mut rng);

        // Biome-dependent scatter in the open region.
        let (trees, tall_grass, chickens, sheep) = match biome {
            Biome::Jungle => (22, 4, 1, 1),
            Biome::Plains => (8, 12, 4, 7),
            Biome::Savanna => (6, 16, 2, 2),
            Biome::Forest => (20, 4, 1, 1),
        };
        let agent = Pos::new(WORLD_SIZE / 2, (WORLD_SIZE - 6) / 2);
        let scatter = |cells: &mut Vec<Cell>, cell: Cell, count: usize, rng: &mut StdRng| {
            let mut placed = 0;
            let mut guard = 0;
            while placed < count && guard < 2000 {
                guard += 1;
                let x = rng.random_range(0..WORLD_SIZE);
                let y = rng.random_range(0..(WORLD_SIZE - 5));
                let p = Pos::new(x, y);
                let idx = (y * WORLD_SIZE + x) as usize;
                if cells[idx] == Cell::Grass && p.manhattan(agent) > 4 {
                    cells[idx] = cell;
                    placed += 1;
                }
            }
        };
        scatter(&mut cells, Cell::Tree, trees, &mut rng);
        scatter(&mut cells, Cell::TallGrass, tall_grass, &mut rng);
        // A small pond for obstacle variety.
        let px = rng.random_range(2..WORLD_SIZE - 5);
        let py = rng.random_range(2..WORLD_SIZE - 9);
        for dy in 0..2 {
            for dx in 0..3 {
                let p = Pos::new(px + dx, py + dy);
                let idx = (p.y * WORLD_SIZE + p.x) as usize;
                if cells[idx] == Cell::Grass && p.manhattan(agent) > 1 {
                    cells[idx] = Cell::Water;
                }
            }
        }

        // Animals on free cells.
        let mut animals = Vec::new();
        let mut place_animals = |kind: AnimalKind, count: usize, rng: &mut StdRng| {
            let mut placed = 0;
            let mut guard = 0;
            while placed < count && guard < 1000 {
                guard += 1;
                let x = rng.random_range(0..WORLD_SIZE);
                let y = rng.random_range(0..(WORLD_SIZE - 5));
                let p = Pos::new(x, y);
                if cells[(y * WORLD_SIZE + x) as usize].passable() && p != agent {
                    animals.push(Animal {
                        kind,
                        pos: p,
                        sheared_until: 0,
                    });
                    placed += 1;
                }
            }
        };
        place_animals(AnimalKind::Chicken, chickens, &mut rng);
        place_animals(AnimalKind::Sheep, sheep, &mut rng);

        let plan = task.reference_plan();
        Self {
            task,
            cells,
            agent,
            animals,
            inv: Inventory::new(),
            subtask: plan[0],
            interact_target: None,
            interact_progress: 0,
            steps: 0,
            rng,
        }
    }

    /// The task this world was generated for.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// Agent position.
    pub fn agent(&self) -> Pos {
        self.agent
    }

    /// The agent's inventory.
    pub fn inventory(&self) -> &Inventory {
        &self.inv
    }

    /// Current interact streak progress (0 when idle).
    pub fn interact_progress(&self) -> u32 {
        self.interact_progress
    }

    fn in_bounds(&self, p: Pos) -> bool {
        (0..WORLD_SIZE).contains(&p.x) && (0..WORLD_SIZE).contains(&p.y)
    }

    /// Cell at `p` (Water outside the map so it is impassable).
    pub fn cell(&self, p: Pos) -> Cell {
        if self.in_bounds(p) {
            self.cells[(p.y * WORLD_SIZE + p.x) as usize]
        } else {
            Cell::Water
        }
    }

    fn set_cell(&mut self, p: Pos, c: Cell) {
        if self.in_bounds(p) {
            self.cells[(p.y * WORLD_SIZE + p.x) as usize] = c;
        }
    }

    fn animal_at(&self, p: Pos) -> Option<usize> {
        self.animals.iter().position(|a| a.pos == p)
    }

    fn passable(&self, p: Pos) -> bool {
        self.in_bounds(p) && self.cell(p).passable() && self.animal_at(p).is_none()
    }

    /// Number of interacts required to harvest `cell`, with the tool gate.
    fn harvest_requirement(&self, cell: Cell) -> Option<u32> {
        match cell {
            Cell::Tree => Some(3),
            Cell::TallGrass => Some(1),
            Cell::Stone | Cell::CoalOre
                if self.inv.has(Item::WoodenPickaxe) || self.inv.has(Item::StonePickaxe) =>
            {
                Some(2)
            }
            Cell::IronOre if self.inv.has(Item::StonePickaxe) => Some(3),
            _ => None,
        }
    }

    /// Whether `p` holds a target of the current subtask.
    fn is_target(&self, p: Pos) -> bool {
        match self.subtask {
            Subtask::MineLog(_) => self.cell(p) == Cell::Tree,
            Subtask::MineStone(_) => self.cell(p) == Cell::Stone,
            Subtask::MineCoal(_) => self.cell(p) == Cell::CoalOre,
            Subtask::MineIron(_) => self.cell(p) == Cell::IronOre,
            Subtask::CollectSeeds(_) => self.cell(p) == Cell::TallGrass,
            Subtask::HuntChicken(_) => self
                .animal_at(p)
                .map(|i| self.animals[i].kind == AnimalKind::Chicken)
                .unwrap_or(false),
            Subtask::ShearWool(_) => self
                .animal_at(p)
                .map(|i| {
                    self.animals[i].kind == AnimalKind::Sheep
                        && self.animals[i].sheared_until <= self.steps
                })
                .unwrap_or(false),
            _ => false,
        }
    }

    /// All current target positions.
    pub fn target_positions(&self) -> Vec<Pos> {
        let mut out = Vec::new();
        for y in 0..WORLD_SIZE {
            for x in 0..WORLD_SIZE {
                let p = Pos::new(x, y);
                if self.is_target(p) {
                    out.push(p);
                }
            }
        }
        out
    }

    fn harvest(&mut self, p: Pos) {
        match self.cell(p) {
            Cell::Tree => {
                self.inv.add(Item::Log, 1);
                self.set_cell(p, Cell::Grass);
            }
            Cell::TallGrass => {
                self.inv.add(Item::WheatSeeds, 1);
                self.set_cell(p, Cell::Grass);
            }
            Cell::Stone => {
                self.inv.add(Item::Cobblestone, 1);
                self.set_cell(p, Cell::Grass);
            }
            Cell::CoalOre => {
                self.inv.add(Item::Coal, 1);
                self.set_cell(p, Cell::Grass);
            }
            Cell::IronOre => {
                self.inv.add(Item::IronOre, 1);
                self.set_cell(p, Cell::Grass);
            }
            _ => {}
        }
    }

    fn do_interact(&mut self) {
        // Continue an active streak if its target is still adjacent/valid.
        let continuing = self
            .interact_target
            .filter(|&p| self.agent.adjacent_to(p) && self.is_target(p));
        let target = continuing.or_else(|| {
            self.agent
                .neighbors()
                .into_iter()
                .find(|&p| self.is_target(p))
        });
        let Some(p) = target else {
            self.interact_target = None;
            self.interact_progress = 0;
            return;
        };
        if Some(p) != self.interact_target {
            self.interact_target = Some(p);
            self.interact_progress = 0;
        }

        // Animals resolve in one interact.
        if let Some(idx) = self.animal_at(p) {
            match self.animals[idx].kind {
                AnimalKind::Chicken => {
                    self.inv.add(Item::RawChicken, 1);
                    self.animals.swap_remove(idx);
                }
                AnimalKind::Sheep => {
                    if self.animals[idx].sheared_until <= self.steps {
                        self.inv.add(Item::Wool, 1);
                        self.animals[idx].sheared_until = self.steps + 80;
                    }
                }
            }
            self.interact_target = None;
            self.interact_progress = 0;
            return;
        }

        // Cells require a (possibly multi-step) streak and the right tool.
        let Some(required) = self.harvest_requirement(self.cell(p)) else {
            // Wrong tool: no progress.
            self.interact_target = None;
            self.interact_progress = 0;
            return;
        };
        self.interact_progress += 1;
        if self.interact_progress >= required {
            self.harvest(p);
            self.interact_target = None;
            self.interact_progress = 0;
        }
    }

    fn move_animals(&mut self) {
        for i in 0..self.animals.len() {
            if self.rng.random_range(0.0..1.0) < 0.35 {
                let dir = self.rng.random_range(0..4);
                let next = self.animals[i].pos.neighbors()[dir];
                if self.passable(next) && next != self.agent {
                    self.animals[i].pos = next;
                }
            }
        }
    }

    /// Sets the active subtask (resets any interact streak).
    pub fn set_subtask(&mut self, s: Subtask) {
        self.subtask = s;
        self.interact_target = None;
        self.interact_progress = 0;
    }

    /// The active subtask.
    pub fn current_subtask(&self) -> Subtask {
        self.subtask
    }

    /// Whether the active subtask's goal is met.
    pub fn subtask_complete(&self) -> bool {
        self.subtask.goal_met(&self.inv)
    }

    /// Whether the overall task goal is met (the final plan entry's goal).
    pub fn task_goal_met(&self) -> bool {
        self.task
            .reference_plan()
            .last()
            .map(|st| st.goal_met(&self.inv))
            .unwrap_or(false)
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Advances the world by one agent action.
    pub fn step(&mut self, action: Action) {
        self.steps += 1;
        self.move_animals();
        match action {
            Action::North | Action::South | Action::East | Action::West => {
                let next = self.agent.stepped(action);
                if self.passable(next) {
                    self.agent = next;
                }
                self.interact_target = None;
                self.interact_progress = 0;
            }
            Action::Interact => self.do_interact(),
            Action::Craft => {
                if let Some(recipe) = self.subtask.craft_recipe() {
                    recipe.craft(&mut self.inv);
                }
                self.interact_target = None;
                self.interact_progress = 0;
            }
            Action::Wait => {
                self.interact_target = None;
                self.interact_progress = 0;
            }
        }
    }

    /// Multi-source BFS distances over passable cells from `goals`
    /// (distance 0 at cells adjacent to a goal — where the agent must stand
    /// to interact). Returns `u32::MAX` for unreachable cells.
    fn bfs_to_adjacent(&self, goals: &[Pos]) -> Vec<u32> {
        let n = (WORLD_SIZE * WORLD_SIZE) as usize;
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        for &g in goals {
            for p in g.neighbors() {
                let standable = self.in_bounds(p)
                    && self.cell(p).passable()
                    && (self.animal_at(p).is_none() || p == self.agent);
                // Animals stand on passable cells; the agent interacts from
                // an adjacent cell, so the animal cell itself is the goal's
                // "stand next to" ring too.
                if standable {
                    let idx = (p.y * WORLD_SIZE + p.x) as usize;
                    if dist[idx] != 0 {
                        dist[idx] = 0;
                        queue.push_back(p);
                    }
                }
            }
        }
        while let Some(p) = queue.pop_front() {
            let d = dist[(p.y * WORLD_SIZE + p.x) as usize];
            for next in p.neighbors() {
                if !self.in_bounds(next) || !self.cell(next).passable() {
                    continue;
                }
                let idx = (next.y * WORLD_SIZE + next.x) as usize;
                if dist[idx] == u32::MAX {
                    dist[idx] = d + 1;
                    queue.push_back(next);
                }
            }
        }
        dist
    }

    /// The scripted expert's action distribution for the current state.
    pub fn expert_policy(&self) -> [f32; Action::COUNT] {
        let mut probs = [0.0f32; Action::COUNT];
        // Completed subtask or idle: wait for the runner to advance.
        if self.subtask_complete() || self.subtask == Subtask::Idle {
            probs[Action::Wait.index()] = 1.0;
            return probs;
        }
        // Crafting subtasks: craft when possible, otherwise wait (a sign of
        // an infeasible plan — e.g. a corrupted planner output).
        if let Some(recipe) = self.subtask.craft_recipe() {
            if recipe.can_craft(&self.inv) {
                probs[Action::Craft.index()] = 1.0;
            } else {
                probs[Action::Wait.index()] = 1.0;
            }
            return probs;
        }
        // Gathering subtasks. Mid-streak or adjacent target: interact.
        let adjacent_target = self
            .agent
            .neighbors()
            .into_iter()
            .any(|p| self.is_target(p));
        if adjacent_target {
            probs[Action::Interact.index()] = 1.0;
            return probs;
        }
        let targets = self.target_positions();
        // Tool gate not satisfied (e.g. mining without a pickaxe) or no
        // targets: roam uniformly — the exploration phase.
        let gated = match self.subtask {
            Subtask::MineStone(_) | Subtask::MineCoal(_) => {
                !self.inv.has(Item::WoodenPickaxe) && !self.inv.has(Item::StonePickaxe)
            }
            Subtask::MineIron(_) => !self.inv.has(Item::StonePickaxe),
            _ => false,
        };
        if targets.is_empty() || gated {
            let moves: Vec<Action> = [Action::North, Action::South, Action::East, Action::West]
                .into_iter()
                .filter(|&a| self.passable(self.agent.stepped(a)))
                .collect();
            if moves.is_empty() {
                probs[Action::Wait.index()] = 1.0;
            } else {
                let p = 1.0 / moves.len() as f32;
                for m in moves {
                    probs[m.index()] = p;
                }
            }
            return probs;
        }
        // Navigate: uniform over BFS-optimal first moves.
        let dist = self.bfs_to_adjacent(&targets);
        let here = dist[(self.agent.y * WORLD_SIZE + self.agent.x) as usize];
        if here == u32::MAX {
            // Unreachable: roam.
            let moves: Vec<Action> = [Action::North, Action::South, Action::East, Action::West]
                .into_iter()
                .filter(|&a| self.passable(self.agent.stepped(a)))
                .collect();
            if moves.is_empty() {
                probs[Action::Wait.index()] = 1.0;
            } else {
                let p = 1.0 / moves.len() as f32;
                for m in moves {
                    probs[m.index()] = p;
                }
            }
            return probs;
        }
        let mut best_moves = Vec::new();
        for a in [Action::North, Action::South, Action::East, Action::West] {
            let next = self.agent.stepped(a);
            if !self.passable(next) {
                continue;
            }
            let d = dist[(next.y * WORLD_SIZE + next.x) as usize];
            if d != u32::MAX && d + 1 == here {
                best_moves.push(a);
            }
        }
        if best_moves.is_empty() {
            probs[Action::Wait.index()] = 1.0;
        } else {
            let p = 1.0 / best_moves.len() as f32;
            for m in best_moves {
                probs[m.index()] = p;
            }
        }
        probs
    }

    /// Builds the controller observation.
    pub fn observe(&self) -> Observation {
        let mut view = [cell_id::WALL; VIEW_CELLS];
        for vy in 0..VIEW_SIZE as i32 {
            for vx in 0..VIEW_SIZE as i32 {
                let p = Pos::new(
                    self.agent.x + vx - VIEW_RADIUS,
                    self.agent.y + vy - VIEW_RADIUS,
                );
                if !self.in_bounds(p) {
                    continue;
                }
                let mut id = self.cell(p).view_id();
                if let Some(i) = self.animal_at(p) {
                    id = match self.animals[i].kind {
                        AnimalKind::Chicken => cell_id::CHICKEN,
                        AnimalKind::Sheep if self.animals[i].sheared_until > self.steps => {
                            cell_id::SHEEP_SHEARED
                        }
                        AnimalKind::Sheep => cell_id::SHEEP,
                    };
                }
                view[(vy * VIEW_SIZE as i32 + vx) as usize] = id;
            }
        }

        // Compass toward the nearest target (Euclidean nearest).
        let mut compass = [0.0f32; 4];
        let targets = self.target_positions();
        if let Some(&nearest) = targets.iter().min_by_key(|p| self.agent.manhattan(**p)) {
            let dx = (nearest.x - self.agent.x) as f32;
            let dy = (nearest.y - self.agent.y) as f32;
            let d = (dx * dx + dy * dy).sqrt().max(1e-6);
            compass = [dx / d, dy / d, (d / 20.0).min(1.0), 1.0];
        }

        // Status features.
        let mut status = [0.0f32; STATUS_DIMS];
        status[0] = self.interact_progress as f32 / 3.0;
        status[1] = self
            .subtask
            .craft_recipe()
            .map(|r| if r.can_craft(&self.inv) { 1.0 } else { 0.0 })
            .unwrap_or(0.0);
        status[2] = (self.inv.count(Item::Log) as f32 / 4.0).min(1.0);
        status[3] = (self.inv.count(Item::Plank) as f32 / 12.0).min(1.0);
        status[4] = (self.inv.count(Item::Stick) as f32 / 8.0).min(1.0);
        status[5] = (self.inv.count(Item::Cobblestone) as f32 / 11.0).min(1.0);
        status[6] = if self.inv.has(Item::WoodenPickaxe) {
            1.0
        } else {
            0.0
        };
        status[7] = if self.inv.has(Item::StonePickaxe) {
            1.0
        } else {
            0.0
        };
        status[8] = if self.inv.has(Item::CraftingTable) {
            1.0
        } else {
            0.0
        };
        status[9] = if self.inv.has(Item::Furnace) {
            1.0
        } else {
            0.0
        };
        status[10] = subtask_progress(&self.inv, self.subtask);
        status[11] = 0.0; // holding flag (manipulation world only)
                          // Neighbour passability and target flags (N, S, E, W).
        for (i, a) in [Action::North, Action::South, Action::East, Action::West]
            .into_iter()
            .enumerate()
        {
            let p = self.agent.stepped(a);
            status[12 + i] = if self.passable(p) { 1.0 } else { 0.0 };
            status[16 + i] = if self.is_target(p) { 1.0 } else { 0.0 };
        }

        Observation {
            view,
            compass,
            status,
            subtask_token: self.subtask.token_id().unwrap_or(0),
        }
    }
}

/// Fraction of the active gathering goal already satisfied.
fn subtask_progress(inv: &Inventory, st: Subtask) -> f32 {
    let (have, need) = match st {
        Subtask::MineLog(n) => (inv.count(Item::Log), n),
        Subtask::MineStone(n) => (inv.count(Item::Cobblestone), n),
        Subtask::MineCoal(n) => (inv.count(Item::Coal), n),
        Subtask::MineIron(n) => (inv.count(Item::IronOre), n),
        Subtask::HuntChicken(n) => (inv.count(Item::RawChicken), n),
        Subtask::ShearWool(n) => (inv.count(Item::Wool), n),
        Subtask::CollectSeeds(n) => (inv.count(Item::WheatSeeds), n),
        _ => return 0.0,
    };
    if need == 0 {
        1.0
    } else {
        (have as f32 / need as f32).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_generation_is_deterministic() {
        let a = CraftWorld::new(TaskId::Wooden, 7);
        let b = CraftWorld::new(TaskId::Wooden, 7);
        assert_eq!(a.cells, b.cells);
        assert_eq!(a.agent, b.agent);
    }

    #[test]
    fn different_seeds_differ() {
        let a = CraftWorld::new(TaskId::Wooden, 1);
        let b = CraftWorld::new(TaskId::Wooden, 2);
        assert_ne!(a.cells, b.cells);
    }

    #[test]
    fn jungle_has_more_trees_than_plains() {
        let count_trees = |w: &CraftWorld| w.cells.iter().filter(|&&c| c == Cell::Tree).count();
        let jungle = CraftWorld::new(TaskId::Wooden, 3);
        let plains = CraftWorld::new(TaskId::Stone, 3);
        assert!(count_trees(&jungle) > 2 * count_trees(&plains));
    }

    #[test]
    fn chopping_takes_three_consecutive_interacts() {
        let mut w = CraftWorld::new(TaskId::Log, 11);
        // Teleport a tree next to the agent for a controlled test.
        let spot = Pos::new(w.agent.x + 1, w.agent.y);
        w.set_cell(spot, Cell::Tree);
        w.set_subtask(Subtask::MineLog(1));
        w.step(Action::Interact);
        w.step(Action::Interact);
        assert_eq!(w.inventory().count(Item::Log), 0);
        w.step(Action::Interact);
        assert_eq!(w.inventory().count(Item::Log), 1);
        assert_eq!(w.cell(spot), Cell::Grass);
    }

    #[test]
    fn interrupted_chop_streak_resets() {
        let mut w = CraftWorld::new(TaskId::Log, 12);
        let spot = Pos::new(w.agent.x + 1, w.agent.y);
        w.set_cell(spot, Cell::Tree);
        w.set_subtask(Subtask::MineLog(1));
        w.step(Action::Interact);
        w.step(Action::Interact);
        w.step(Action::Wait); // interruption
        w.step(Action::Interact);
        w.step(Action::Interact);
        assert_eq!(
            w.inventory().count(Item::Log),
            0,
            "streak must restart after interruption"
        );
        w.step(Action::Interact);
        assert_eq!(w.inventory().count(Item::Log), 1);
    }

    #[test]
    fn mining_requires_a_pickaxe() {
        let mut w = CraftWorld::new(TaskId::Stone, 13);
        let spot = Pos::new(w.agent.x + 1, w.agent.y);
        w.set_cell(spot, Cell::Stone);
        w.set_subtask(Subtask::MineStone(1));
        for _ in 0..4 {
            w.step(Action::Interact);
        }
        assert_eq!(w.inventory().count(Item::Cobblestone), 0, "no pickaxe yet");
        w.inv.add(Item::WoodenPickaxe, 1);
        w.step(Action::Interact);
        w.step(Action::Interact);
        assert_eq!(w.inventory().count(Item::Cobblestone), 1);
    }

    #[test]
    fn craft_action_follows_subtask_recipe() {
        let mut w = CraftWorld::new(TaskId::Wooden, 14);
        w.inv.add(Item::Log, 2);
        w.set_subtask(Subtask::CraftPlanks(8));
        w.step(Action::Craft);
        assert_eq!(w.inventory().count(Item::Plank), 4);
        assert!(!w.subtask_complete());
        w.step(Action::Craft);
        assert_eq!(w.inventory().count(Item::Plank), 8);
        assert!(w.subtask_complete());
    }

    #[test]
    fn expert_navigates_and_completes_mine_log() {
        // The expert alone (sampling its argmax) must finish MineLog(2) in
        // a jungle quickly.
        let mut w = CraftWorld::new(TaskId::Wooden, 15);
        w.set_subtask(Subtask::MineLog(2));
        for _ in 0..400 {
            if w.subtask_complete() {
                break;
            }
            let probs = w.expert_policy();
            let best = probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            w.step(Action::from_index(best));
        }
        assert!(
            w.subtask_complete(),
            "expert failed MineLog(2) within 400 steps"
        );
    }

    #[test]
    fn expert_waits_on_infeasible_craft() {
        let mut w = CraftWorld::new(TaskId::Wooden, 16);
        w.set_subtask(Subtask::CraftIronSword); // no materials: corrupted plan
        let probs = w.expert_policy();
        assert_eq!(probs[Action::Wait.index()], 1.0);
    }

    #[test]
    fn observation_view_is_centered_and_in_range() {
        let w = CraftWorld::new(TaskId::Stone, 17);
        let obs = w.observe();
        assert!(obs.view.iter().all(|&v| v < 14));
        // Center cell is where the agent stands: must be passable ground.
        let center = obs.view[VIEW_CELLS / 2];
        assert!(
            center == cell_id::GROUND || center == cell_id::TALL_GRASS,
            "agent must stand on passable terrain, got {center}"
        );
    }

    #[test]
    fn compass_points_at_targets() {
        let mut w = CraftWorld::new(TaskId::Wooden, 18);
        w.set_subtask(Subtask::MineLog(1));
        let obs = w.observe();
        assert_eq!(obs.compass[3], 1.0, "jungle should have visible trees");
        let norm = (obs.compass[0] * obs.compass[0] + obs.compass[1] * obs.compass[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-3, "direction should be unit length");
    }

    #[test]
    fn hunting_chicken_succeeds_with_expert() {
        let mut w = CraftWorld::new(TaskId::Chicken, 19);
        w.set_subtask(Subtask::HuntChicken(1));
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..600 {
            if w.subtask_complete() {
                break;
            }
            let probs = w.expert_policy();
            // Sample from the expert distribution.
            let mut r: f32 = rng.random_range(0.0..1.0);
            let mut chosen = Action::Wait;
            for (i, &p) in probs.iter().enumerate() {
                if r < p {
                    chosen = Action::from_index(i);
                    break;
                }
                r -= p;
            }
            w.step(chosen);
        }
        assert!(w.subtask_complete(), "expert failed to hunt a chicken");
    }

    #[test]
    fn task_goal_tracks_final_item() {
        let mut w = CraftWorld::new(TaskId::Wooden, 20);
        assert!(!w.task_goal_met());
        w.inv.add(Item::WoodenPickaxe, 1);
        assert!(w.task_goal_met());
    }

    #[test]
    fn sheep_shearing_has_cooldown() {
        let mut w = CraftWorld::new(TaskId::Wool, 21);
        // Place a sheep next to the agent.
        let spot = Pos::new(w.agent.x + 1, w.agent.y);
        w.animals.push(Animal {
            kind: AnimalKind::Sheep,
            pos: spot,
            sheared_until: 0,
        });
        w.set_subtask(Subtask::ShearWool(2));
        w.step(Action::Interact);
        assert_eq!(w.inventory().count(Item::Wool), 1);
        // Sheep may wander; interact again only if still adjacent.
        if w.animal_at(spot).is_some() {
            w.step(Action::Interact);
            assert_eq!(
                w.inventory().count(Item::Wool),
                1,
                "sheared sheep must not yield wool during cooldown"
            );
        }
    }
}
