//! Items and inventories for the crafting world.

use std::collections::BTreeMap;
use std::fmt;

/// Every item an agent can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Item {
    /// Raw wood from trees.
    Log,
    /// Crafted from logs (1 → 4).
    Plank,
    /// Crafted from planks (2 → 4).
    Stick,
    /// Crafting station (portable here).
    CraftingTable,
    /// Tier-1 mining tool.
    WoodenPickaxe,
    /// Mined stone.
    Cobblestone,
    /// Tier-2 mining tool.
    StonePickaxe,
    /// Smelting station (portable here).
    Furnace,
    /// Mined fuel/ore.
    Coal,
    /// Smelted wood fuel.
    Charcoal,
    /// Mined iron ore.
    IronOre,
    /// Smelted ingot.
    IronIngot,
    /// The `iron` task's goal item.
    IronSword,
    /// Dropped by chickens.
    RawChicken,
    /// The `chicken` task's goal item.
    CookedChicken,
    /// Sheared from sheep.
    Wool,
    /// Collected from tall grass.
    WheatSeeds,
}

impl Item {
    /// Whether one unit of this item can fuel one smelt.
    pub fn is_fuel(self) -> bool {
        matches!(self, Item::Plank | Item::Log | Item::Coal | Item::Charcoal)
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Item::Log => "log",
            Item::Plank => "plank",
            Item::Stick => "stick",
            Item::CraftingTable => "crafting_table",
            Item::WoodenPickaxe => "wooden_pickaxe",
            Item::Cobblestone => "cobblestone",
            Item::StonePickaxe => "stone_pickaxe",
            Item::Furnace => "furnace",
            Item::Coal => "coal",
            Item::Charcoal => "charcoal",
            Item::IronOre => "iron_ore",
            Item::IronIngot => "iron_ingot",
            Item::IronSword => "iron_sword",
            Item::RawChicken => "raw_chicken",
            Item::CookedChicken => "cooked_chicken",
            Item::Wool => "wool",
            Item::WheatSeeds => "wheat_seeds",
        };
        f.write_str(s)
    }
}

/// A multiset of items.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Inventory {
    counts: BTreeMap<Item, u32>,
}

impl Inventory {
    /// An empty inventory.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many of `item` are held.
    pub fn count(&self, item: Item) -> u32 {
        self.counts.get(&item).copied().unwrap_or(0)
    }

    /// Whether at least one of `item` is held.
    pub fn has(&self, item: Item) -> bool {
        self.count(item) > 0
    }

    /// Adds `n` of `item`.
    pub fn add(&mut self, item: Item, n: u32) {
        if n > 0 {
            *self.counts.entry(item).or_insert(0) += n;
        }
    }

    /// Removes `n` of `item`; returns `false` (and removes nothing) if the
    /// inventory holds fewer than `n`.
    pub fn remove(&mut self, item: Item, n: u32) -> bool {
        let have = self.count(item);
        if have < n {
            return false;
        }
        if have == n {
            self.counts.remove(&item);
        } else {
            self.counts.insert(item, have - n);
        }
        true
    }

    /// Consumes one unit of the best available fuel (preferring the
    /// cheapest: plank, then log, then charcoal, then coal).
    pub fn consume_fuel(&mut self) -> bool {
        for fuel in [Item::Plank, Item::Log, Item::Charcoal, Item::Coal] {
            if self.remove(fuel, 1) {
                return true;
            }
        }
        false
    }

    /// Whether any fuel unit is available.
    pub fn has_fuel(&self) -> bool {
        [Item::Plank, Item::Log, Item::Charcoal, Item::Coal]
            .iter()
            .any(|&f| self.has(f))
    }

    /// Iterates over held `(item, count)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (Item, u32)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }

    /// Total number of items held.
    pub fn total(&self) -> u32 {
        self.counts.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut inv = Inventory::new();
        inv.add(Item::Log, 3);
        inv.add(Item::Log, 2);
        assert_eq!(inv.count(Item::Log), 5);
        assert_eq!(inv.count(Item::Plank), 0);
    }

    #[test]
    fn remove_respects_availability() {
        let mut inv = Inventory::new();
        inv.add(Item::Plank, 2);
        assert!(!inv.remove(Item::Plank, 3));
        assert_eq!(inv.count(Item::Plank), 2, "failed removal must not mutate");
        assert!(inv.remove(Item::Plank, 2));
        assert!(!inv.has(Item::Plank));
    }

    #[test]
    fn fuel_preference_order() {
        let mut inv = Inventory::new();
        inv.add(Item::Coal, 1);
        inv.add(Item::Plank, 1);
        assert!(inv.consume_fuel());
        assert!(!inv.has(Item::Plank), "plank should burn first");
        assert!(inv.has(Item::Coal));
        assert!(inv.consume_fuel());
        assert!(!inv.has_fuel());
        assert!(!inv.consume_fuel());
    }

    #[test]
    fn adding_zero_is_noop() {
        let mut inv = Inventory::new();
        inv.add(Item::Wool, 0);
        assert_eq!(inv.total(), 0);
    }

    #[test]
    fn iter_is_stable() {
        let mut inv = Inventory::new();
        inv.add(Item::Stick, 1);
        inv.add(Item::Log, 2);
        let items: Vec<_> = inv.iter().collect();
        assert_eq!(items, vec![(Item::Log, 2), (Item::Stick, 1)]);
    }
}
