//! Shared spatial and action primitives for the simulated environments.

use std::fmt;

/// The discrete action space shared by both environments.
///
/// The RL controller emits a distribution over these seven actions each
/// step (the paper's controller similarly emits per-step action logits,
/// Fig. 3). `Interact` is context-sensitive (chop / mine / pick / press);
/// `Craft` executes the current subtask's recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Move one cell north (−y).
    North,
    /// Move one cell south (+y).
    South,
    /// Move one cell east (+x).
    East,
    /// Move one cell west (−x).
    West,
    /// Act on an adjacent target (chop, mine, grab, press, ...).
    Interact,
    /// Execute the current subtask's recipe (craft / smelt).
    Craft,
    /// Do nothing this step.
    Wait,
}

impl Action {
    /// Number of actions.
    pub const COUNT: usize = 7;

    /// All actions in index order.
    pub const ALL: [Action; Action::COUNT] = [
        Action::North,
        Action::South,
        Action::East,
        Action::West,
        Action::Interact,
        Action::Craft,
        Action::Wait,
    ];

    /// Index of this action in [`Action::ALL`].
    pub fn index(self) -> usize {
        Action::ALL.iter().position(|&a| a == self).expect("in ALL")
    }

    /// Action from an index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Action::COUNT`.
    pub fn from_index(i: usize) -> Action {
        Action::ALL[i]
    }

    /// The movement delta of this action, if it is a move.
    pub fn delta(self) -> Option<(i32, i32)> {
        match self {
            Action::North => Some((0, -1)),
            Action::South => Some((0, 1)),
            Action::East => Some((1, 0)),
            Action::West => Some((-1, 0)),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Action::North => "north",
            Action::South => "south",
            Action::East => "east",
            Action::West => "west",
            Action::Interact => "interact",
            Action::Craft => "craft",
            Action::Wait => "wait",
        };
        f.write_str(s)
    }
}

/// A grid position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pos {
    /// Column.
    pub x: i32,
    /// Row.
    pub y: i32,
}

impl Pos {
    /// Convenience constructor.
    pub fn new(x: i32, y: i32) -> Self {
        Self { x, y }
    }

    /// Manhattan distance to `other`.
    pub fn manhattan(self, other: Pos) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }

    /// The four orthogonal neighbours.
    pub fn neighbors(self) -> [Pos; 4] {
        [
            Pos::new(self.x, self.y - 1),
            Pos::new(self.x, self.y + 1),
            Pos::new(self.x + 1, self.y),
            Pos::new(self.x - 1, self.y),
        ]
    }

    /// Whether `other` is orthogonally adjacent.
    pub fn adjacent_to(self, other: Pos) -> bool {
        self.manhattan(other) == 1
    }

    /// Position after applying `action`'s delta (unchanged for non-moves).
    pub fn stepped(self, action: Action) -> Pos {
        match action.delta() {
            Some((dx, dy)) => Pos::new(self.x + dx, self.y + dy),
            None => self,
        }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_indices_roundtrip() {
        for (i, &a) in Action::ALL.iter().enumerate() {
            assert_eq!(a.index(), i);
            assert_eq!(Action::from_index(i), a);
        }
    }

    #[test]
    fn moves_have_unit_deltas() {
        for a in [Action::North, Action::South, Action::East, Action::West] {
            let (dx, dy) = a.delta().expect("move");
            assert_eq!(dx.abs() + dy.abs(), 1);
        }
        assert!(Action::Interact.delta().is_none());
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Pos::new(0, 0).manhattan(Pos::new(3, 4)), 7);
        assert_eq!(Pos::new(-2, 1).manhattan(Pos::new(2, 1)), 4);
    }

    #[test]
    fn neighbors_are_adjacent() {
        let p = Pos::new(5, 5);
        for n in p.neighbors() {
            assert!(p.adjacent_to(n));
        }
        assert!(!p.adjacent_to(p));
    }

    #[test]
    fn stepped_applies_delta() {
        let p = Pos::new(1, 1);
        assert_eq!(p.stepped(Action::North), Pos::new(1, 0));
        assert_eq!(p.stepped(Action::Craft), p);
    }
}
