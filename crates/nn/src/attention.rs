//! Multi-head self-attention: trainable `f32` form with manual backward,
//! and the quantized accelerator-backed deployment form.
//!
//! Error injection targets the Q/K/V/O *weight* GEMMs (the INT8 operations
//! the paper quantizes, Sec. 3.2); the score/probability math runs in f32.

use crate::activation::{softmax_backward_into, softmax_rows_in_place};
use crate::linear::{Linear, LinearGrads, QuantLinear};
use create_accel::{Accelerator, Component, LayerCtx, Unit};
use create_tensor::{Matrix, Precision};
use rand::Rng;

/// Extracts columns `[h*dh, (h+1)*dh)` of `m` into a caller-provided
/// matrix (reused storage).
fn head_slice_into(m: &Matrix, h: usize, dh: usize, out: &mut Matrix) {
    out.reset_zeros(m.rows(), dh);
    for r in 0..m.rows() {
        let src = &m.row(r)[h * dh..(h + 1) * dh];
        out.row_mut(r).copy_from_slice(src);
    }
}

/// Adds `part` back into columns `[h*dh, (h+1)*dh)` of `m`.
fn head_unslice(m: &mut Matrix, part: &Matrix, h: usize, dh: usize) {
    for r in 0..part.rows() {
        for c in 0..part.cols() {
            let cur = m.get(r, h * dh + c);
            m.set(r, h * dh + c, cur + part.get(r, c));
        }
    }
}

/// Applies a causal mask in place (`-inf` above the diagonal).
fn causal_mask(scores: &mut Matrix) {
    for r in 0..scores.rows() {
        for c in (r + 1)..scores.cols() {
            scores.set(r, c, f32::NEG_INFINITY);
        }
    }
}

/// Trainable multi-head attention parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Mha {
    /// Query projection `(d, d)`.
    pub wq: Linear,
    /// Key projection `(d, d)`.
    pub wk: Linear,
    /// Value projection `(d, d)`.
    pub wv: Linear,
    /// Output projection `(d, d)`.
    pub wo: Linear,
    /// Number of heads (must divide `d`).
    pub heads: usize,
    /// Whether to apply a causal mask (planner decoding).
    pub causal: bool,
}

/// Cached forward state for the backward pass.
///
/// `Default` yields an empty cache whose buffers
/// [`Mha::forward_cached`] fills and reuses across samples.
#[derive(Debug, Clone, Default)]
pub struct MhaCache {
    pub(crate) x: Matrix,
    pub(crate) q: Matrix,
    pub(crate) k: Matrix,
    pub(crate) v: Matrix,
    pub(crate) probs: Vec<Matrix>,
    pub(crate) context: Matrix,
}

/// Gradient buffers for [`Mha`].
#[derive(Debug, Clone, Default)]
pub struct MhaGrads {
    /// Query projection gradients.
    pub wq: LinearGrads,
    /// Key projection gradients.
    pub wk: LinearGrads,
    /// Value projection gradients.
    pub wv: LinearGrads,
    /// Output projection gradients.
    pub wo: LinearGrads,
}

impl MhaGrads {
    /// Zeroes all projection gradients in place, (re)shaped for `mha`
    /// (contents identical to [`Mha::zero_grads`], storage kept).
    pub fn reset_for(&mut self, mha: &Mha) {
        self.wq.reset_for(&mha.wq);
        self.wk.reset_for(&mha.wk);
        self.wv.reset_for(&mha.wv);
        self.wo.reset_for(&mha.wo);
    }
}

/// Reusable temporaries for one [`Mha::forward_cached`] /
/// [`Mha::backward_with`] pair.
///
/// Holds the per-head slices and gradient intermediates of the *training*
/// attention path (the inference twin is [`MhaScratch`]). Every buffer is
/// fully overwritten before use; one instance serves every layer of a
/// stacked model and every sample of a batch in turn.
#[derive(Debug, Default)]
pub struct MhaTrainScratch {
    qh: Matrix,
    kh: Matrix,
    vh: Matrix,
    scores: Matrix,
    ch: Matrix,
    dcontext: Matrix,
    dch: Matrix,
    dp: Matrix,
    dvh: Matrix,
    dscores: Matrix,
    dqh: Matrix,
    dkh: Matrix,
    dq: Matrix,
    dk: Matrix,
    dv: Matrix,
    dx_tmp: Matrix,
    lin_tmp: Matrix,
}

impl Mha {
    /// Creates randomly initialized attention with `heads` heads over model
    /// width `d`.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `d`.
    pub fn new(d: usize, heads: usize, causal: bool, rng: &mut impl Rng) -> Self {
        assert!(
            d.is_multiple_of(heads),
            "heads {heads} must divide width {d}"
        );
        Self {
            wq: Linear::new(d, d, false, rng),
            wk: Linear::new(d, d, false, rng),
            wv: Linear::new(d, d, false, rng),
            wo: Linear::new(d, d, false, rng),
            heads,
            causal,
        }
    }

    /// Model width.
    pub fn width(&self) -> usize {
        self.wq.w.rows()
    }

    /// Forward pass over a `(T, d)` sequence.
    pub fn forward(&self, x: &Matrix) -> (Matrix, MhaCache) {
        let mut cache = MhaCache::default();
        let mut scratch = MhaTrainScratch::default();
        let mut y = Matrix::default();
        self.forward_cached(x, &mut cache, &mut scratch, &mut y);
        (y, cache)
    }

    /// [`forward`](Self::forward) into caller-provided cache and output
    /// buffers — bit-identical activations and cache contents, zero
    /// steady-state allocation once the buffers are warm.
    pub fn forward_cached(
        &self,
        x: &Matrix,
        cache: &mut MhaCache,
        scratch: &mut MhaTrainScratch,
        out: &mut Matrix,
    ) {
        let d = self.width();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        cache.x.copy_from(x);
        self.wq.forward_into(x, &mut cache.q);
        self.wk.forward_into(x, &mut cache.k);
        self.wv.forward_into(x, &mut cache.v);
        cache.context.reset_zeros(x.rows(), d);
        cache.probs.resize_with(self.heads, Matrix::default);
        for h in 0..self.heads {
            head_slice_into(&cache.q, h, dh, &mut scratch.qh);
            head_slice_into(&cache.k, h, dh, &mut scratch.kh);
            head_slice_into(&cache.v, h, dh, &mut scratch.vh);
            scratch.qh.matmul_nt_into(&scratch.kh, &mut scratch.scores);
            scratch.scores.scale_in_place(scale);
            if self.causal {
                causal_mask(&mut scratch.scores);
            }
            let p = &mut cache.probs[h];
            p.copy_from(&scratch.scores);
            softmax_rows_in_place(p);
            p.matmul_into(&scratch.vh, &mut scratch.ch);
            head_unslice(&mut cache.context, &scratch.ch, h, dh);
        }
        self.wo.forward_into(&cache.context, out);
    }

    /// Backward pass; returns `dx` and fills `grads`.
    pub fn backward(&self, cache: &MhaCache, dy: &Matrix, grads: &mut MhaGrads) -> Matrix {
        let mut scratch = MhaTrainScratch::default();
        let mut dx = Matrix::default();
        self.backward_with(cache, dy, grads, &mut scratch, &mut dx);
        dx
    }

    /// [`backward`](Self::backward) with caller-provided scratch and
    /// output buffers — bit-identical gradients (every reduction keeps
    /// the allocating form's order, including the `dx_q + dx_k + dx_v`
    /// residual sum), zero steady-state allocation.
    pub fn backward_with(
        &self,
        cache: &MhaCache,
        dy: &Matrix,
        grads: &mut MhaGrads,
        scratch: &mut MhaTrainScratch,
        dx: &mut Matrix,
    ) {
        let d = self.width();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let MhaTrainScratch {
            qh,
            kh,
            vh,
            dcontext,
            dch,
            dp,
            dvh,
            dscores,
            dqh,
            dkh,
            dq,
            dk,
            dv,
            dx_tmp,
            lin_tmp,
            ..
        } = scratch;
        // Through the output projection.
        self.wo
            .backward_with(&cache.context, dy, &mut grads.wo, lin_tmp, dcontext);
        dq.reset_zeros(cache.x.rows(), d);
        dk.reset_zeros(cache.x.rows(), d);
        dv.reset_zeros(cache.x.rows(), d);
        for h in 0..self.heads {
            head_slice_into(&cache.q, h, dh, qh);
            head_slice_into(&cache.k, h, dh, kh);
            head_slice_into(&cache.v, h, dh, vh);
            head_slice_into(dcontext, h, dh, dch);
            let p = &cache.probs[h];
            // context_h = p @ v_h
            dch.matmul_nt_into(vh, dp);
            p.matmul_tn_into(dch, dvh);
            softmax_backward_into(p, dp, dscores);
            // scores = scale * q_h @ k_h^T
            dscores.matmul_into(kh, dqh);
            dqh.scale_in_place(scale);
            dscores.matmul_tn_into(qh, dkh);
            dkh.scale_in_place(scale);
            head_unslice(dq, dqh, h, dh);
            head_unslice(dk, dkh, h, dh);
            head_unslice(dv, dvh, h, dh);
        }
        self.wq
            .backward_with(&cache.x, dq, &mut grads.wq, lin_tmp, dx);
        self.wk
            .backward_with(&cache.x, dk, &mut grads.wk, lin_tmp, dx_tmp);
        dx.add_assign(dx_tmp);
        self.wv
            .backward_with(&cache.x, dv, &mut grads.wv, lin_tmp, dx_tmp);
        dx.add_assign(dx_tmp);
    }

    /// Zero-filled gradient buffers.
    pub fn zero_grads(&self) -> MhaGrads {
        MhaGrads {
            wq: self.wq.zero_grads(),
            wk: self.wk.zero_grads(),
            wv: self.wv.zero_grads(),
            wo: self.wo.zero_grads(),
        }
    }
}

/// Reusable buffers for one [`QuantMha::forward_into`] call.
///
/// Holds the Q/K/V/context activations plus the per-head slices and
/// score/context temporaries; every matrix is resized in place and fully
/// overwritten each call, so a sequential token loop (planner decode,
/// controller steps) allocates nothing once the buffers are warm.
/// Scratch contents never influence results.
#[derive(Debug, Default)]
pub struct MhaScratch {
    q: Matrix,
    k: Matrix,
    v: Matrix,
    context: Matrix,
    qh: Matrix,
    kh: Matrix,
    vh: Matrix,
    scores: Matrix,
    ch: Matrix,
}

/// Deployed multi-head attention with quantized projections.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMha {
    /// Quantized query projection.
    pub wq: QuantLinear,
    /// Quantized key projection.
    pub wk: QuantLinear,
    /// Quantized value projection.
    pub wv: QuantLinear,
    /// Quantized output projection.
    pub wo: QuantLinear,
    /// Head count.
    pub heads: usize,
    /// Causal masking flag.
    pub causal: bool,
}

/// Calibration maxima for one linear layer: `(input_max, output_max)`.
pub type CalRange = (f32, f32);

impl QuantMha {
    /// Quantizes a trained [`Mha`] given per-projection calibration ranges.
    pub fn from_calibrated(
        mha: &Mha,
        cal_q: CalRange,
        cal_k: CalRange,
        cal_v: CalRange,
        cal_o: CalRange,
        margin: f32,
        precision: Precision,
    ) -> Self {
        Self {
            wq: QuantLinear::from_calibrated(&mha.wq, cal_q.0, cal_q.1, margin, precision),
            wk: QuantLinear::from_calibrated(&mha.wk, cal_k.0, cal_k.1, margin, precision),
            wv: QuantLinear::from_calibrated(&mha.wv, cal_v.0, cal_v.1, margin, precision),
            wo: QuantLinear::from_calibrated(&mha.wo, cal_o.0, cal_o.1, margin, precision),
            heads: mha.heads,
            causal: mha.causal,
        }
    }

    /// Forward pass on the accelerator.
    pub fn forward(&self, accel: &mut Accelerator, x: &Matrix, unit: Unit, layer: usize) -> Matrix {
        let mut scratch = MhaScratch::default();
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(accel, x, unit, layer, &mut scratch, &mut out);
        out
    }

    /// [`forward`](Self::forward) with caller-provided scratch and output
    /// buffers — bit-identical results, zero steady-state allocation.
    pub fn forward_into(
        &self,
        accel: &mut Accelerator,
        x: &Matrix,
        unit: Unit,
        layer: usize,
        scratch: &mut MhaScratch,
        out: &mut Matrix,
    ) {
        let d = self.wq.fan_in();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        self.wq.forward_into(
            accel,
            x,
            LayerCtx::new(unit, Component::Q, layer),
            &mut scratch.q,
        );
        self.wk.forward_into(
            accel,
            x,
            LayerCtx::new(unit, Component::K, layer),
            &mut scratch.k,
        );
        self.wv.forward_into(
            accel,
            x,
            LayerCtx::new(unit, Component::V, layer),
            &mut scratch.v,
        );
        scratch.context.reset_zeros(x.rows(), d);
        for h in 0..self.heads {
            head_slice_into(&scratch.q, h, dh, &mut scratch.qh);
            head_slice_into(&scratch.k, h, dh, &mut scratch.kh);
            head_slice_into(&scratch.v, h, dh, &mut scratch.vh);
            scratch.qh.matmul_nt_into(&scratch.kh, &mut scratch.scores);
            scratch.scores.scale_in_place(scale);
            if self.causal {
                causal_mask(&mut scratch.scores);
            }
            // `scores` becomes the softmax probabilities in place.
            softmax_rows_in_place(&mut scratch.scores);
            scratch.scores.matmul_into(&scratch.vh, &mut scratch.ch);
            head_unslice(&mut scratch.context, &scratch.ch, h, dh);
        }
        self.wo.forward_into(
            accel,
            &scratch.context,
            LayerCtx::new(unit, Component::O, layer),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_is_preserved() {
        let mut rng = StdRng::seed_from_u64(1);
        let mha = Mha::new(16, 4, false, &mut rng);
        let x = Matrix::random_uniform(5, 16, 1.0, &mut rng);
        let (y, _) = mha.forward(&x);
        assert_eq!(y.shape(), (5, 16));
    }

    #[test]
    fn causal_mask_blocks_future_tokens() {
        let mut rng = StdRng::seed_from_u64(2);
        let mha = Mha::new(8, 2, true, &mut rng);
        let x = Matrix::random_uniform(4, 8, 1.0, &mut rng);
        let (y, _) = mha.forward(&x);
        // Changing a future token must not affect an earlier position.
        let mut x2 = x.clone();
        for c in 0..8 {
            x2.set(3, c, x.get(3, c) + 5.0);
        }
        let (y2, _) = mha.forward(&x2);
        for c in 0..8 {
            assert!(
                (y.get(0, c) - y2.get(0, c)).abs() < 1e-6,
                "token 0 saw a change in token 3"
            );
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mha = Mha::new(8, 2, true, &mut rng);
        let x = Matrix::random_uniform(3, 8, 0.7, &mut rng);
        let coeff = Matrix::random_uniform(3, 8, 1.0, &mut rng);
        let loss = |m: &Mha, xx: &Matrix| {
            let (y, _) = m.forward(xx);
            y.as_slice()
                .iter()
                .zip(coeff.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (_, cache) = mha.forward(&x);
        let mut grads = mha.zero_grads();
        let dx = mha.backward(&cache, &coeff, &mut grads);

        let eps = 1e-2;
        // Spot-check dx.
        for &(r, c) in &[(0usize, 0usize), (1, 3), (2, 7)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let fd = (loss(&mha, &xp) - loss(&mha, &xm)) / (2.0 * eps);
            assert!(
                (dx.get(r, c) - fd).abs() < 0.05 * (1.0 + fd.abs()),
                "dx mismatch at ({r},{c}): {} vs {fd}",
                dx.get(r, c)
            );
        }
        // Spot-check weight grads on each projection.
        for (name, w_ref, g) in [
            ("wq", &mha.wq, &grads.wq),
            ("wk", &mha.wk, &grads.wk),
            ("wv", &mha.wv, &grads.wv),
            ("wo", &mha.wo, &grads.wo),
        ] {
            let (r, c) = (1usize, 2usize);
            let mut mp = mha.clone();
            let mut mm = mha.clone();
            let wp = match name {
                "wq" => &mut mp.wq,
                "wk" => &mut mp.wk,
                "wv" => &mut mp.wv,
                _ => &mut mp.wo,
            };
            wp.w.set(r, c, w_ref.w.get(r, c) + eps);
            let wm = match name {
                "wq" => &mut mm.wq,
                "wk" => &mut mm.wk,
                "wv" => &mut mm.wv,
                _ => &mut mm.wo,
            };
            wm.w.set(r, c, w_ref.w.get(r, c) - eps);
            let fd = (loss(&mp, &x) - loss(&mm, &x)) / (2.0 * eps);
            assert!(
                (g.dw.get(r, c) - fd).abs() < 0.05 * (1.0 + fd.abs()),
                "{name} grad mismatch: {} vs {fd}",
                g.dw.get(r, c)
            );
        }
    }

    #[test]
    fn quantized_attention_tracks_float_attention() {
        let mut rng = StdRng::seed_from_u64(4);
        let mha = Mha::new(16, 4, false, &mut rng);
        let x = Matrix::random_uniform(4, 16, 1.0, &mut rng);
        let (y_float, cache) = mha.forward(&x);
        let cal = |m: &Matrix| m.max_abs();
        let q = QuantMha::from_calibrated(
            &mha,
            (cal(&x), cal(&cache.q)),
            (cal(&x), cal(&cache.k)),
            (cal(&x), cal(&cache.v)),
            (cal(&cache.context), cal(&y_float)),
            1.25,
            Precision::Int8,
        );
        let mut accel = Accelerator::ideal(0);
        let y_quant = q.forward(&mut accel, &x, Unit::Controller, 0);
        let err = y_float.max_abs_diff(&y_quant);
        assert!(err < 0.15, "quantized attention error {err}");
        assert_eq!(accel.gemms(), 4, "Q,K,V,O weight GEMMs only");
    }
}
