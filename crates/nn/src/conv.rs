//! 2-D convolution and pooling for the entropy predictor CNN (paper
//! Table 9): `Conv2d(stride 3, kernel 3, pad 1)` stages with max pooling
//! and a global average pool, with manual backward passes for training.

use create_tensor::Matrix;
use rand::Rng;

/// A `(channels, height, width)` activation tensor in CHW layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f32>,
}

impl Tensor3 {
    /// Zero-filled tensor.
    pub fn zeros(c: usize, h: usize, w: usize) -> Self {
        Self {
            c,
            h,
            w,
            data: vec![0.0; c * h * w],
        }
    }

    /// Builds from a CHW vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match.
    pub fn from_vec(c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), c * h * w, "tensor3 data length mismatch");
        Self { c, h, w, data }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, ci: usize, hi: usize, wi: usize) -> f32 {
        self.data[(ci * self.h + hi) * self.w + wi]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, ci: usize, hi: usize, wi: usize, v: f32) {
        self.data[(ci * self.h + hi) * self.w + wi] = v;
    }

    /// Adds to an element.
    #[inline]
    pub fn add_at(&mut self, ci: usize, hi: usize, wi: usize, v: f32) {
        self.data[(ci * self.h + hi) * self.w + wi] += v;
    }

    /// Raw CHW data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Applies ReLU element-wise.
    pub fn relu(&self) -> Tensor3 {
        Tensor3 {
            c: self.c,
            h: self.h,
            w: self.w,
            data: self.data.iter().map(|v| v.max(0.0)).collect(),
        }
    }

    /// ReLU backward against this pre-activation tensor.
    pub fn relu_backward(&self, dy: &Tensor3) -> Tensor3 {
        assert_eq!(self.data.len(), dy.data.len());
        Tensor3 {
            c: self.c,
            h: self.h,
            w: self.w,
            data: self
                .data
                .iter()
                .zip(&dy.data)
                .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
                .collect(),
        }
    }
}

/// A 2-D convolution layer with square kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2d {
    /// Kernel weights: flattened `(c_out, c_in, k, k)`.
    pub weight: Vec<f32>,
    /// Per-output-channel bias.
    pub bias: Vec<f32>,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Kernel size.
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl Conv2d {
    /// Kaiming-initialized convolution.
    pub fn new(
        c_in: usize,
        c_out: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = (c_in * k * k) as f32;
        let limit = (6.0 / fan_in).sqrt();
        let weight = (0..c_out * c_in * k * k)
            .map(|_| rng.random_range(-limit..limit))
            .collect();
        Self {
            weight,
            bias: vec![0.0; c_out],
            c_in,
            c_out,
            k,
            stride,
            pad,
        }
    }

    /// Output spatial size for an input of size `n`.
    pub fn out_size(&self, n: usize) -> usize {
        (n + 2 * self.pad - self.k) / self.stride + 1
    }

    #[inline]
    fn w_at(&self, co: usize, ci: usize, kh: usize, kw: usize) -> f32 {
        self.weight[((co * self.c_in + ci) * self.k + kh) * self.k + kw]
    }

    /// Forward pass.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count differs from `c_in`.
    pub fn forward(&self, x: &Tensor3) -> Tensor3 {
        assert_eq!(x.c, self.c_in, "conv input channels mismatch");
        let oh = self.out_size(x.h);
        let ow = self.out_size(x.w);
        let mut y = Tensor3::zeros(self.c_out, oh, ow);
        for co in 0..self.c_out {
            for out_r in 0..oh {
                for out_c in 0..ow {
                    let mut acc = self.bias[co];
                    let base_r = (out_r * self.stride) as isize - self.pad as isize;
                    let base_c = (out_c * self.stride) as isize - self.pad as isize;
                    for ci in 0..self.c_in {
                        for kh in 0..self.k {
                            let ir = base_r + kh as isize;
                            if ir < 0 || ir >= x.h as isize {
                                continue;
                            }
                            for kw in 0..self.k {
                                let ic = base_c + kw as isize;
                                if ic < 0 || ic >= x.w as isize {
                                    continue;
                                }
                                acc +=
                                    self.w_at(co, ci, kh, kw) * x.get(ci, ir as usize, ic as usize);
                            }
                        }
                    }
                    y.set(co, out_r, out_c, acc);
                }
            }
        }
        y
    }

    /// Backward pass: returns `dx` and accumulates parameter grads.
    pub fn backward(&self, x: &Tensor3, dy: &Tensor3, grads: &mut Conv2dGrads) -> Tensor3 {
        let mut dx = Tensor3::zeros(x.c, x.h, x.w);
        for co in 0..self.c_out {
            for out_r in 0..dy.h {
                for out_c in 0..dy.w {
                    let g = dy.get(co, out_r, out_c);
                    if g == 0.0 {
                        continue;
                    }
                    grads.db[co] += g;
                    let base_r = (out_r * self.stride) as isize - self.pad as isize;
                    let base_c = (out_c * self.stride) as isize - self.pad as isize;
                    for ci in 0..self.c_in {
                        for kh in 0..self.k {
                            let ir = base_r + kh as isize;
                            if ir < 0 || ir >= x.h as isize {
                                continue;
                            }
                            for kw in 0..self.k {
                                let ic = base_c + kw as isize;
                                if ic < 0 || ic >= x.w as isize {
                                    continue;
                                }
                                let widx = ((co * self.c_in + ci) * self.k + kh) * self.k + kw;
                                grads.dw[widx] += g * x.get(ci, ir as usize, ic as usize);
                                dx.add_at(ci, ir as usize, ic as usize, g * self.weight[widx]);
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    /// Zero-filled gradient buffers.
    pub fn zero_grads(&self) -> Conv2dGrads {
        Conv2dGrads {
            dw: vec![0.0; self.weight.len()],
            db: vec![0.0; self.bias.len()],
        }
    }
}

/// Gradient buffers for [`Conv2d`].
#[derive(Debug, Clone, PartialEq)]
pub struct Conv2dGrads {
    /// Kernel gradients.
    pub dw: Vec<f32>,
    /// Bias gradients.
    pub db: Vec<f32>,
}

/// 2×2 max pooling with stride 2; remembers argmax indices for backward.
pub fn maxpool2(x: &Tensor3) -> (Tensor3, Vec<usize>) {
    let oh = x.h / 2;
    let ow = x.w / 2;
    let mut y = Tensor3::zeros(x.c, oh, ow);
    let mut arg = vec![0usize; x.c * oh * ow];
    for c in 0..x.c {
        for r in 0..oh {
            for col in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0;
                for dr in 0..2 {
                    for dc in 0..2 {
                        let rr = r * 2 + dr;
                        let cc = col * 2 + dc;
                        let v = x.get(c, rr, cc);
                        if v > best {
                            best = v;
                            best_idx = (c * x.h + rr) * x.w + cc;
                        }
                    }
                }
                y.set(c, r, col, best);
                arg[(c * oh + r) * ow + col] = best_idx;
            }
        }
    }
    (y, arg)
}

/// Backward for [`maxpool2`]: routes gradients to the argmax positions.
pub fn maxpool2_backward(x_shape: (usize, usize, usize), arg: &[usize], dy: &Tensor3) -> Tensor3 {
    let (c, h, w) = x_shape;
    let mut dx = Tensor3::zeros(c, h, w);
    for (i, &src) in arg.iter().enumerate() {
        let g = dy.as_slice()[i];
        let (ci, rest) = (src / (h * w), src % (h * w));
        dx.add_at(ci, rest / w, rest % w, g);
    }
    dx
}

/// Global average pool: `(C, H, W) → C`-vector.
pub fn global_avgpool(x: &Tensor3) -> Vec<f32> {
    let area = (x.h * x.w) as f32;
    (0..x.c)
        .map(|c| {
            let mut sum = 0.0;
            for r in 0..x.h {
                for col in 0..x.w {
                    sum += x.get(c, r, col);
                }
            }
            sum / area
        })
        .collect()
}

/// Backward for [`global_avgpool`].
pub fn global_avgpool_backward(x_shape: (usize, usize, usize), dy: &[f32]) -> Tensor3 {
    let (c, h, w) = x_shape;
    let area = (h * w) as f32;
    let mut dx = Tensor3::zeros(c, h, w);
    for (ci, &g) in dy.iter().enumerate() {
        for r in 0..h {
            for col in 0..w {
                dx.set(ci, r, col, g / area);
            }
        }
    }
    dx
}

/// Flattens a [`Tensor3`] into a 1-row [`Matrix`].
pub fn flatten(x: &Tensor3) -> Matrix {
    Matrix::from_vec(1, x.len(), x.as_slice().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn out_size_matches_table9_pipeline() {
        // 64 → 22 → (pool) 11 → 4 → (pool) 2 → 1, per the predictor CNN.
        let conv = Conv2d {
            weight: vec![],
            bias: vec![],
            c_in: 3,
            c_out: 16,
            k: 3,
            stride: 3,
            pad: 1,
        };
        assert_eq!(conv.out_size(64), 22);
        assert_eq!(conv.out_size(11), 4);
        assert_eq!(conv.out_size(2), 1);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1x1-channel conv with center-1 kernel, stride 1: identity.
        let mut conv = Conv2d {
            weight: vec![0.0; 9],
            bias: vec![0.0],
            c_in: 1,
            c_out: 1,
            k: 3,
            stride: 1,
            pad: 1,
        };
        conv.weight[4] = 1.0; // center
        let x = Tensor3::from_vec(1, 3, 3, (1..=9).map(|v| v as f32).collect());
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(2, 3, 3, 2, 1, &mut rng);
        let x = Tensor3::from_vec(
            2,
            5,
            5,
            (0..50).map(|_| rng.random_range(-1.0..1.0f32)).collect(),
        );
        let loss = |c: &Conv2d, xx: &Tensor3| c.forward(xx).as_slice().iter().sum::<f32>();
        let y = conv.forward(&x);
        let dy = Tensor3::from_vec(y.c, y.h, y.w, vec![1.0; y.len()]);
        let mut grads = conv.zero_grads();
        let dx = conv.backward(&x, &dy, &mut grads);
        let eps = 1e-3;
        // Weight gradient spot checks.
        for widx in [0usize, 7, 20, 50] {
            let mut cp = conv.clone();
            cp.weight[widx] += eps;
            let mut cm = conv.clone();
            cm.weight[widx] -= eps;
            let fd = (loss(&cp, &x) - loss(&cm, &x)) / (2.0 * eps);
            assert!(
                (grads.dw[widx] - fd).abs() < 1e-2,
                "dw[{widx}] {} vs {fd}",
                grads.dw[widx]
            );
        }
        // Input gradient spot checks.
        for (ci, r, c) in [(0usize, 0usize, 0usize), (1, 2, 3), (0, 4, 4)] {
            let mut xp = x.clone();
            xp.set(ci, r, c, x.get(ci, r, c) + eps);
            let mut xm = x.clone();
            xm.set(ci, r, c, x.get(ci, r, c) - eps);
            let fd = (loss(&conv, &xp) - loss(&conv, &xm)) / (2.0 * eps);
            assert!(
                (dx.get(ci, r, c) - fd).abs() < 1e-2,
                "dx({ci},{r},{c}) {} vs {fd}",
                dx.get(ci, r, c)
            );
        }
        // Bias gradient equals the number of output positions.
        assert!((grads.db[0] - (y.h * y.w) as f32).abs() < 1e-3);
    }

    #[test]
    fn maxpool_selects_maxima_and_routes_gradients() {
        let x = Tensor3::from_vec(
            1,
            4,
            4,
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let (y, arg) = maxpool2(&x);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        let dy = Tensor3::from_vec(1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let dx = maxpool2_backward((1, 4, 4), &arg, &dy);
        assert_eq!(dx.get(0, 1, 1), 1.0);
        assert_eq!(dx.get(0, 1, 3), 2.0);
        assert_eq!(dx.get(0, 3, 1), 3.0);
        assert_eq!(dx.get(0, 3, 3), 4.0);
        assert_eq!(dx.get(0, 0, 0), 0.0);
    }

    #[test]
    fn global_avgpool_and_backward_are_consistent() {
        let x = Tensor3::from_vec(2, 2, 2, vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0]);
        let pooled = global_avgpool(&x);
        assert_eq!(pooled, vec![2.5, 10.0]);
        let dx = global_avgpool_backward((2, 2, 2), &[4.0, 8.0]);
        assert!(dx.as_slice()[..4].iter().all(|&v| v == 1.0));
        assert!(dx.as_slice()[4..].iter().all(|&v| v == 2.0));
    }
}
