//! Row-wise normalization layers.
//!
//! The planner uses RMSNorm and the controller LayerNorm (paper Fig. 3).
//! Both are parameter-free here: dropping the learnable per-channel affine
//! keeps them exactly equivariant to orthogonal rotations of the residual
//! stream, which is what lets Hadamard/Householder rotations be folded into
//! adjacent weights without changing the network function (Sec. 5.2).

use create_tensor::Matrix;

const EPS: f32 = 1e-5;

/// Per-row statistics captured by a normalization forward pass.
///
/// Exposed so the characterization experiments can report how a single
/// injected fault skews μ and σ (paper Fig. 5 k–l).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NormStats {
    /// Per-row means (zero for RMSNorm, which does not center).
    pub mean: Vec<f32>,
    /// Per-row denominators (RMS or standard deviation).
    pub denom: Vec<f32>,
}

impl NormStats {
    /// Empties both vectors while keeping their capacity (the in-place
    /// forward passes refill them row by row).
    fn clear(&mut self) {
        self.mean.clear();
        self.denom.clear();
    }
}

/// RMSNorm forward: `y = x / sqrt(mean(x²) + eps)` per row.
pub fn rmsnorm(x: &Matrix) -> Matrix {
    rmsnorm_with_stats(x).0
}

/// [`rmsnorm`] into a caller-provided matrix (identical values, reused
/// storage; per-row statistics are not captured).
pub fn rmsnorm_into(x: &Matrix, out: &mut Matrix) {
    let d = x.cols() as f32;
    out.copy_from(x);
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d;
        let rms = (ms + EPS).sqrt();
        for v in row.iter_mut() {
            *v /= rms;
        }
    }
}

/// RMSNorm forward returning the per-row statistics.
pub fn rmsnorm_with_stats(x: &Matrix) -> (Matrix, NormStats) {
    let mut out = Matrix::default();
    let mut stats = NormStats::default();
    rmsnorm_with_stats_into(x, &mut out, &mut stats);
    (out, stats)
}

/// [`rmsnorm_with_stats`] into caller-provided output and stats buffers
/// (identical values, reused storage — the training forward pass runs
/// this twice per block per sample).
pub fn rmsnorm_with_stats_into(x: &Matrix, out: &mut Matrix, stats: &mut NormStats) {
    let d = x.cols() as f32;
    out.copy_from(x);
    stats.clear();
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d;
        let rms = (ms + EPS).sqrt();
        for v in row.iter_mut() {
            *v /= rms;
        }
        stats.mean.push(0.0);
        stats.denom.push(rms);
    }
}

/// RMSNorm backward: `dx = (dy − y · mean(dy ⊙ y)) / rms` per row.
pub fn rmsnorm_backward(y: &Matrix, stats: &NormStats, dy: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    rmsnorm_backward_into(y, stats, dy, &mut out);
    out
}

/// [`rmsnorm_backward`] into a caller-provided matrix (identical values,
/// reused storage; the per-row reduction is hoisted out of the element
/// loop, which cannot change any bit — every element sees the same dot
/// product).
pub fn rmsnorm_backward_into(y: &Matrix, stats: &NormStats, dy: &Matrix, out: &mut Matrix) {
    assert_eq!(y.shape(), dy.shape(), "rmsnorm backward shape mismatch");
    let d = y.cols() as f32;
    out.reset_zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let dot: f32 = y.row(r).iter().zip(dy.row(r)).map(|(a, b)| a * b).sum();
        let denom = stats.denom[r];
        let out_row = out.row_mut(r);
        for (c, o) in out_row.iter_mut().enumerate() {
            *o = (dy.get(r, c) - y.get(r, c) * dot / d) / denom;
        }
    }
}

/// LayerNorm forward: `y = (x − μ) / sqrt(var + eps)` per row.
pub fn layernorm(x: &Matrix) -> Matrix {
    layernorm_with_stats(x).0
}

/// [`layernorm`] into a caller-provided matrix (identical values, reused
/// storage; per-row statistics are not captured).
pub fn layernorm_into(x: &Matrix, out: &mut Matrix) {
    let d = x.cols() as f32;
    out.copy_from(x);
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let mu: f32 = row.iter().sum::<f32>() / d;
        let var: f32 = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d;
        let sd = (var + EPS).sqrt();
        for v in row.iter_mut() {
            *v = (*v - mu) / sd;
        }
    }
}

/// LayerNorm forward returning the per-row statistics.
pub fn layernorm_with_stats(x: &Matrix) -> (Matrix, NormStats) {
    let mut out = Matrix::default();
    let mut stats = NormStats::default();
    layernorm_with_stats_into(x, &mut out, &mut stats);
    (out, stats)
}

/// [`layernorm_with_stats`] into caller-provided output and stats buffers
/// (identical values, reused storage).
pub fn layernorm_with_stats_into(x: &Matrix, out: &mut Matrix, stats: &mut NormStats) {
    let d = x.cols() as f32;
    out.copy_from(x);
    stats.clear();
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let mu: f32 = row.iter().sum::<f32>() / d;
        let var: f32 = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d;
        let sd = (var + EPS).sqrt();
        for v in row.iter_mut() {
            *v = (*v - mu) / sd;
        }
        stats.mean.push(mu);
        stats.denom.push(sd);
    }
}

/// LayerNorm backward:
/// `dx = (dy − mean(dy) − y · mean(dy ⊙ y)) / σ` per row.
pub fn layernorm_backward(y: &Matrix, stats: &NormStats, dy: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    layernorm_backward_into(y, stats, dy, &mut out);
    out
}

/// [`layernorm_backward`] into a caller-provided matrix (identical
/// values, reused storage; the per-row reductions are hoisted out of the
/// element loop, which cannot change any bit).
pub fn layernorm_backward_into(y: &Matrix, stats: &NormStats, dy: &Matrix, out: &mut Matrix) {
    assert_eq!(y.shape(), dy.shape(), "layernorm backward shape mismatch");
    let d = y.cols() as f32;
    out.reset_zeros(y.rows(), y.cols());
    for r in 0..y.rows() {
        let mean_dy: f32 = dy.row(r).iter().sum::<f32>() / d;
        let dot: f32 = y
            .row(r)
            .iter()
            .zip(dy.row(r))
            .map(|(a, b)| a * b)
            .sum::<f32>()
            / d;
        let denom = stats.denom[r];
        let out_row = out.row_mut(r);
        for (c, o) in out_row.iter_mut().enumerate() {
            *o = (dy.get(r, c) - mean_dy - y.get(r, c) * dot) / denom;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_tensor::hadamard::Rotation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff(f: impl Fn(&Matrix) -> f32, x: &Matrix, r: usize, c: usize, eps: f32) -> f32 {
        let mut plus = x.clone();
        plus.set(r, c, x.get(r, c) + eps);
        let mut minus = x.clone();
        minus.set(r, c, x.get(r, c) - eps);
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    #[test]
    fn rmsnorm_rows_have_unit_rms() {
        let mut rng = StdRng::seed_from_u64(1);
        let x = Matrix::random_uniform(3, 16, 4.0, &mut rng);
        let y = rmsnorm(&x);
        for r in 0..3 {
            let ms: f32 = y.row(r).iter().map(|v| v * v).sum::<f32>() / 16.0;
            assert!((ms - 1.0).abs() < 1e-3, "row {r} rms² = {ms}");
        }
    }

    #[test]
    fn layernorm_rows_are_standardized() {
        let mut rng = StdRng::seed_from_u64(2);
        let x = Matrix::random_uniform(3, 32, 4.0, &mut rng);
        let y = layernorm(&x);
        for r in 0..3 {
            let mu: f32 = y.row(r).iter().sum::<f32>() / 32.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / 32.0;
            assert!(mu.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn rmsnorm_commutes_with_rotation() {
        // RMSNorm(x R) == RMSNorm(x) R — the foundation of weight rotation.
        let mut rng = StdRng::seed_from_u64(3);
        let x = Matrix::random_uniform(2, 16, 3.0, &mut rng);
        let rot = Rotation::hadamard(16);
        let lhs = rmsnorm(&rot.apply_right(&x));
        let rhs = rot.apply_right(&rmsnorm(&x));
        assert!(lhs.max_abs_diff(&rhs) < 1e-4);
    }

    #[test]
    fn rmsnorm_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Matrix::random_uniform(2, 6, 2.0, &mut rng);
        // Loss = sum of outputs weighted by fixed coefficients.
        let w = Matrix::random_uniform(2, 6, 1.0, &mut rng);
        let loss = |m: &Matrix| {
            let y = rmsnorm(m);
            y.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (y, stats) = rmsnorm_with_stats(&x);
        let grad = rmsnorm_backward(&y, &stats, &w);
        for r in 0..2 {
            for c in 0..6 {
                let fd = finite_diff(loss, &x, r, c, 1e-3);
                assert!(
                    (grad.get(r, c) - fd).abs() < 2e-2,
                    "rmsnorm grad mismatch at ({r},{c}): {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn layernorm_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::random_uniform(2, 6, 2.0, &mut rng);
        let w = Matrix::random_uniform(2, 6, 1.0, &mut rng);
        let loss = |m: &Matrix| {
            let y = layernorm(m);
            y.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (y, stats) = layernorm_with_stats(&x);
        let grad = layernorm_backward(&y, &stats, &w);
        for r in 0..2 {
            for c in 0..6 {
                let fd = finite_diff(loss, &x, r, c, 1e-3);
                assert!(
                    (grad.get(r, c) - fd).abs() < 2e-2,
                    "layernorm grad mismatch at ({r},{c}): {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn a_single_outlier_skews_norm_statistics() {
        // The Sec. 4.1 mechanism in miniature: with an outlier present, a
        // large injected error drastically moves the denominator.
        let mut clean: Vec<f32> = vec![0.1; 64];
        clean[7] = 20.0; // systematic outlier channel
        let x = Matrix::from_vec(1, 64, clean.clone());
        let (_, s0) = rmsnorm_with_stats(&x);
        let mut faulty = clean;
        faulty[30] = 60.0; // injected large error
        let xf = Matrix::from_vec(1, 64, faulty);
        let (_, s1) = rmsnorm_with_stats(&xf);
        assert!(
            s1.denom[0] > 2.0 * s0.denom[0],
            "denominator should be skewed: {} -> {}",
            s0.denom[0],
            s1.denom[0]
        );
    }
}
