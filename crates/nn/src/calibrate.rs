//! Offline calibration: running maxima of layer inputs/outputs.
//!
//! Deployment quantizes activations with *offline-determined scaling
//! factors* (paper Sec. 5.1): a calibration pass over representative data
//! records the largest |input| and |output| of every linear layer, which
//! become the quantization scales and the anomaly-detection bounds. Weight
//! rotation changes these profiles — re-calibrating after rotation is what
//! tightens the AD bound (the AD+WR synergy of Sec. 6.6).

use crate::activation::{relu, silu, softmax_rows};
use crate::block::{ControllerBlock, PlannerBlock, QuantControllerBlock, QuantPlannerBlock};
use crate::norm::{layernorm, rmsnorm};
use create_tensor::{Matrix, Precision};

/// Running input/output maxima for one linear layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cal {
    /// Largest |input| observed.
    pub input: f32,
    /// Largest |output| observed.
    pub output: f32,
}

impl Default for Cal {
    fn default() -> Self {
        Self {
            input: 1e-6,
            output: 1e-6,
        }
    }
}

impl Cal {
    /// Folds one observation pair into the running maxima.
    pub fn update(&mut self, input: f32, output: f32) {
        self.input = self.input.max(input);
        self.output = self.output.max(output);
    }

    /// As the `(input_max, output_max)` pair the quantizers take.
    pub fn range(&self) -> (f32, f32) {
        (self.input, self.output)
    }
}

/// Calibration state for one planner block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlannerBlockCal {
    /// Query projection.
    pub q: Cal,
    /// Key projection.
    pub k: Cal,
    /// Value projection.
    pub v: Cal,
    /// Output projection.
    pub o: Cal,
    /// Gate projection.
    pub gate: Cal,
    /// Up projection.
    pub up: Cal,
    /// Down projection.
    pub down: Cal,
}

/// Calibration state for one controller block.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ControllerBlockCal {
    /// Query projection.
    pub q: Cal,
    /// Key projection.
    pub k: Cal,
    /// Value projection.
    pub v: Cal,
    /// Output projection.
    pub o: Cal,
    /// First MLP layer.
    pub fc1: Cal,
    /// Second MLP layer.
    pub fc2: Cal,
}

/// Replays multi-head attention in f32, updating calibration and returning
/// the attention output.
fn mha_calibrate(
    attn: &crate::attention::Mha,
    x: &Matrix,
    q_cal: &mut Cal,
    k_cal: &mut Cal,
    v_cal: &mut Cal,
    o_cal: &mut Cal,
) -> Matrix {
    let d = attn.width();
    let dh = d / attn.heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let q = attn.wq.forward(x);
    let k = attn.wk.forward(x);
    let v = attn.wv.forward(x);
    q_cal.update(x.max_abs(), q.max_abs());
    k_cal.update(x.max_abs(), k.max_abs());
    v_cal.update(x.max_abs(), v.max_abs());
    let mut context = Matrix::zeros(x.rows(), d);
    for h in 0..attn.heads {
        let slice = |m: &Matrix| Matrix::from_fn(m.rows(), dh, |r, c| m.get(r, h * dh + c));
        let qh = slice(&q);
        let kh = slice(&k);
        let vh = slice(&v);
        let mut scores = qh.matmul_nt(&kh);
        scores.scale_in_place(scale);
        if attn.causal {
            for r in 0..scores.rows() {
                for c in (r + 1)..scores.cols() {
                    scores.set(r, c, f32::NEG_INFINITY);
                }
            }
        }
        let p = softmax_rows(&scores);
        let ch = p.matmul(&vh);
        for r in 0..ch.rows() {
            for c in 0..dh {
                let cur = context.get(r, h * dh + c);
                context.set(r, h * dh + c, cur + ch.get(r, c));
            }
        }
    }
    let y = attn.wo.forward(&context);
    o_cal.update(context.max_abs(), y.max_abs());
    y
}

impl PlannerBlock {
    /// Forward pass that records calibration maxima.
    pub fn forward_calibrate(&self, x: &Matrix, cal: &mut PlannerBlockCal) -> Matrix {
        let n1 = rmsnorm(x);
        let a = mha_calibrate(
            &self.attn, &n1, &mut cal.q, &mut cal.k, &mut cal.v, &mut cal.o,
        );
        let y = x.add(&a);
        let n2 = rmsnorm(&y);
        let gate = self.mlp.wgate.forward(&n2);
        let up = self.mlp.wup.forward(&n2);
        cal.gate.update(n2.max_abs(), gate.max_abs());
        cal.up.update(n2.max_abs(), up.max_abs());
        let act = silu(&gate);
        let prod = Matrix::from_fn(act.rows(), act.cols(), |r, c| act.get(r, c) * up.get(r, c));
        let m = self.mlp.wdown.forward(&prod);
        cal.down.update(prod.max_abs(), m.max_abs());
        y.add(&m)
    }
}

impl ControllerBlock {
    /// Forward pass that records calibration maxima.
    pub fn forward_calibrate(&self, x: &Matrix, cal: &mut ControllerBlockCal) -> Matrix {
        let n1 = layernorm(x);
        let a = mha_calibrate(
            &self.attn, &n1, &mut cal.q, &mut cal.k, &mut cal.v, &mut cal.o,
        );
        let y = x.add(&a);
        let n2 = layernorm(&y);
        let pre = self.mlp.fc1.forward(&n2);
        cal.fc1.update(n2.max_abs(), pre.max_abs());
        let hidden = relu(&pre);
        let m = self.mlp.fc2.forward(&hidden);
        cal.fc2.update(hidden.max_abs(), m.max_abs());
        y.add(&m)
    }
}

impl QuantPlannerBlock {
    /// Quantizes a trained block from its calibration record.
    pub fn from_block_cal(
        block: &PlannerBlock,
        cal: &PlannerBlockCal,
        margin: f32,
        precision: Precision,
    ) -> Self {
        Self::from_calibrated(
            block,
            cal.q.range(),
            cal.k.range(),
            cal.v.range(),
            cal.o.range(),
            cal.gate.range(),
            cal.up.range(),
            cal.down.range(),
            margin,
            precision,
        )
    }
}

impl QuantControllerBlock {
    /// Quantizes a trained block from its calibration record.
    pub fn from_block_cal(
        block: &ControllerBlock,
        cal: &ControllerBlockCal,
        margin: f32,
        precision: Precision,
    ) -> Self {
        Self::from_calibrated(
            block,
            cal.q.range(),
            cal.k.range(),
            cal.v.range(),
            cal.o.range(),
            cal.fc1.range(),
            cal.fc2.range(),
            margin,
            precision,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_accel::Accelerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn calibrated_forward_matches_regular_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = PlannerBlock::new(16, 32, 4, &mut rng);
        let x = Matrix::random_uniform(5, 16, 1.0, &mut rng);
        let (z, _) = block.forward(&x);
        let mut cal = PlannerBlockCal::default();
        let zc = block.forward_calibrate(&x, &mut cal);
        assert!(z.max_abs_diff(&zc) < 1e-5);
        assert!(cal.q.input > 0.0 && cal.down.output > 0.0);
    }

    #[test]
    fn controller_calibrated_forward_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let block = ControllerBlock::new(16, 32, 4, &mut rng);
        let x = Matrix::random_uniform(4, 16, 1.0, &mut rng);
        let (z, _) = block.forward(&x);
        let mut cal = ControllerBlockCal::default();
        let zc = block.forward_calibrate(&x, &mut cal);
        assert!(z.max_abs_diff(&zc) < 1e-5);
    }

    #[test]
    fn quantized_from_cal_tracks_float_and_never_clamps_clean_data() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = PlannerBlock::new(16, 32, 4, &mut rng);
        let mut cal = PlannerBlockCal::default();
        // Calibrate over several batches.
        let mut inputs = Vec::new();
        for i in 0..4 {
            let x = Matrix::random_uniform(5, 16, 1.0 + i as f32 * 0.2, &mut rng);
            block.forward_calibrate(&x, &mut cal);
            inputs.push(x);
        }
        let q = QuantPlannerBlock::from_block_cal(&block, &cal, 1.25, Precision::Int8);
        for backend in create_accel::GemmBackendKind::ALL {
            let mut accel = Accelerator::new(
                create_accel::AccelConfig {
                    injector: None,
                    ad_enabled: true,
                    backend,
                    ..Default::default()
                },
                0,
            );
            for x in &inputs {
                let (z, _) = block.forward(x);
                let zq = q.forward(&mut accel, x, 0, None);
                let err = z.max_abs_diff(&zq);
                assert!(err < 0.25 * z.max_abs().max(1.0), "quant error {err}");
            }
            assert_eq!(
                accel.ad_stats().cleared,
                0,
                "AD fired on calibration data ({backend})"
            );
        }
    }

    #[test]
    fn cal_update_keeps_maxima() {
        let mut c = Cal::default();
        c.update(1.0, 5.0);
        c.update(0.5, 10.0);
        assert_eq!(c.range(), (1.0, 10.0));
    }
}
