//! Element-wise activations, softmax and entropy.
//!
//! Forward functions are paired with explicit backward functions; the
//! training loops in `create-agents` chain them by hand (no autodiff).

use create_tensor::Matrix;

/// ReLU forward.
pub fn relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

/// [`relu`] into a caller-provided matrix (identical values, reused
/// storage — the deployed forward paths run this every step).
pub fn relu_into(x: &Matrix, out: &mut Matrix) {
    out.copy_from(x);
    for v in out.as_mut_slice().iter_mut() {
        *v = v.max(0.0);
    }
}

/// ReLU backward: `dx = dy ⊙ [x > 0]`.
pub fn relu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    relu_backward_into(x, dy, &mut out);
    out
}

/// [`relu_backward`] into a caller-provided matrix (identical values,
/// reused storage — the allocation-free train step runs this every
/// sample).
pub fn relu_backward_into(x: &Matrix, dy: &Matrix, out: &mut Matrix) {
    assert_eq!(x.shape(), dy.shape(), "relu backward shape mismatch");
    out.copy_from(dy);
    for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
        // Same predicate as the allocating form (NaN inputs zero the
        // gradient, which a `v <= 0.0` test would not).
        let positive = v > 0.0;
        if !positive {
            *o = 0.0;
        }
    }
}

/// Numerically safe logistic sigmoid.
#[inline]
pub fn sigmoid(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// SiLU (swish) forward: `x · σ(x)`.
pub fn silu(x: &Matrix) -> Matrix {
    x.map(|v| v * sigmoid(v))
}

/// [`silu`] into a caller-provided matrix (identical values, reused
/// storage).
pub fn silu_into(x: &Matrix, out: &mut Matrix) {
    out.copy_from(x);
    for v in out.as_mut_slice().iter_mut() {
        *v *= sigmoid(*v);
    }
}

/// SiLU backward: `d/dx [x σ(x)] = σ(x)(1 + x(1 − σ(x)))`.
pub fn silu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    silu_backward_into(x, dy, &mut out);
    out
}

/// [`silu_backward`] into a caller-provided matrix (identical values,
/// reused storage).
pub fn silu_backward_into(x: &Matrix, dy: &Matrix, out: &mut Matrix) {
    assert_eq!(x.shape(), dy.shape(), "silu backward shape mismatch");
    out.copy_from(x);
    for (o, &g) in out.as_mut_slice().iter_mut().zip(dy.as_slice()) {
        let v = *o;
        let s = sigmoid(v);
        *o = g * s * (1.0 + v * (1.0 - s));
    }
}

/// Row-wise softmax with max-subtraction for stability.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = x.clone();
    softmax_rows_in_place(&mut out);
    out
}

/// [`softmax_rows`] applied in place (identical values, no allocation).
pub fn softmax_rows_in_place(x: &mut Matrix) {
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// Softmax backward given the softmax output `p` and upstream `dy`:
/// `ds = p ⊙ (dy − rowsum(dy ⊙ p))`.
pub fn softmax_backward(p: &Matrix, dy: &Matrix) -> Matrix {
    let mut out = Matrix::default();
    softmax_backward_into(p, dy, &mut out);
    out
}

/// [`softmax_backward`] into a caller-provided matrix (identical values,
/// reused storage).
pub fn softmax_backward_into(p: &Matrix, dy: &Matrix, out: &mut Matrix) {
    assert_eq!(p.shape(), dy.shape(), "softmax backward shape mismatch");
    out.reset_zeros(p.rows(), p.cols());
    for r in 0..p.rows() {
        let dot: f32 = p.row(r).iter().zip(dy.row(r)).map(|(a, b)| a * b).sum();
        for c in 0..p.cols() {
            out.set(r, c, p.get(r, c) * (dy.get(r, c) - dot));
        }
    }
}

/// Shannon entropy (nats) of a probability vector.
///
/// Zero entries contribute zero; the input is assumed normalized.
pub fn entropy(probs: &[f32]) -> f32 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Entropy of `softmax(logits)` — the paper's step-criticality indicator
/// (Sec. 5.3).
pub fn logits_entropy(logits: &[f32]) -> f32 {
    let m = Matrix::from_vec(1, logits.len(), logits.to_vec());
    let p = softmax_rows(&m);
    entropy(p.row(0))
}

/// [`logits_entropy`] of row 0 of `logits`, using `probs` as the softmax
/// workspace (identical value, no allocation once `probs` is warm).
pub fn logits_entropy_with(logits: &Matrix, probs: &mut Matrix) -> f32 {
    probs.copy_from(logits);
    softmax_rows_in_place(probs);
    entropy(probs.row(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn finite_diff(f: impl Fn(&Matrix) -> f32, x: &Matrix, r: usize, c: usize, eps: f32) -> f32 {
        let mut plus = x.clone();
        plus.set(r, c, x.get(r, c) + eps);
        let mut minus = x.clone();
        minus.set(r, c, x.get(r, c) - eps);
        (f(&plus) - f(&minus)) / (2.0 * eps)
    }

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -3.0]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn silu_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Matrix::random_uniform(2, 3, 2.0, &mut rng);
        // Loss = sum(silu(x)).
        let dy = Matrix::from_fn(2, 3, |_, _| 1.0);
        let grad = silu_backward(&x, &dy);
        for r in 0..2 {
            for c in 0..3 {
                let fd = finite_diff(|m| silu(m).as_slice().iter().sum(), &x, r, c, 1e-3);
                assert!(
                    (grad.get(r, c) - fd).abs() < 1e-2,
                    "silu grad mismatch at ({r},{c}): {} vs {fd}",
                    grad.get(r, c)
                );
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let p = softmax_rows(&x);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![101.0, 102.0, 103.0]);
        assert!(softmax_rows(&a).max_abs_diff(&softmax_rows(&b)) < 1e-6);
    }

    #[test]
    fn softmax_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(6);
        let x = Matrix::random_uniform(1, 4, 2.0, &mut rng);
        // Loss = p[0] (first softmax output).
        let loss = |m: &Matrix| softmax_rows(m).get(0, 0);
        let p = softmax_rows(&x);
        let mut dy = Matrix::zeros(1, 4);
        dy.set(0, 0, 1.0);
        let grad = softmax_backward(&p, &dy);
        for c in 0..4 {
            let fd = finite_diff(loss, &x, 0, c, 1e-3);
            assert!(
                (grad.get(0, c) - fd).abs() < 1e-3,
                "softmax grad mismatch at {c}: {} vs {fd}",
                grad.get(0, c)
            );
        }
    }

    #[test]
    fn entropy_extremes() {
        // Uniform over n has entropy ln(n); a point mass has zero.
        let uniform = [0.25f32; 4];
        assert!((entropy(&uniform) - 4.0f32.ln()).abs() < 1e-6);
        let point = [1.0, 0.0, 0.0, 0.0];
        assert_eq!(entropy(&point), 0.0);
    }

    #[test]
    fn logits_entropy_tracks_confidence() {
        let confident = logits_entropy(&[10.0, 0.0, 0.0, 0.0]);
        let unsure = logits_entropy(&[1.0, 1.0, 1.0, 1.0]);
        assert!(confident < 0.01);
        assert!((unsure - 4.0f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }
}
