//! Transformer blocks: the planner's pre-RMSNorm attention + SwiGLU MLP and
//! the controller's pre-LayerNorm attention + ReLU MLP (paper Fig. 3), in
//! trainable `f32` and quantized accelerator-backed forms.

use crate::activation::{relu_into, silu_into};
use crate::attention::{CalRange, Mha, MhaCache, MhaGrads, MhaScratch, MhaTrainScratch, QuantMha};
use crate::linear::{Linear, LinearGrads, QuantLinear};
use crate::norm::NormStats;
use create_accel::{Accelerator, Component, LayerCtx, Unit};
use create_tensor::{Matrix, Precision};
use rand::Rng;

// ---------------------------------------------------------------------------
// SwiGLU MLP (planner)
// ---------------------------------------------------------------------------

/// Gated MLP: `down( silu(x @ gate) ⊙ (x @ up) )`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwiGlu {
    /// Gate projection `(d, m)`.
    pub wgate: Linear,
    /// Up projection `(d, m)`.
    pub wup: Linear,
    /// Down projection `(m, d)`.
    pub wdown: Linear,
}

/// Cached forward state for [`SwiGlu`].
///
/// `Default` yields an empty cache whose buffers
/// [`SwiGlu::forward_cached`] fills and reuses across samples.
#[derive(Debug, Clone, Default)]
pub struct SwiGluCache {
    x: Matrix,
    gate: Matrix,
    up: Matrix,
    act: Matrix,
    prod: Matrix,
}

/// Gradient buffers for [`SwiGlu`].
#[derive(Debug, Clone, Default)]
pub struct SwiGluGrads {
    /// Gate projection gradients.
    pub wgate: LinearGrads,
    /// Up projection gradients.
    pub wup: LinearGrads,
    /// Down projection gradients.
    pub wdown: LinearGrads,
}

impl SwiGluGrads {
    /// Zeroes all buffers in place, (re)shaped for `mlp` (contents
    /// identical to [`SwiGlu::zero_grads`], storage kept).
    pub fn reset_for(&mut self, mlp: &SwiGlu) {
        self.wgate.reset_for(&mlp.wgate);
        self.wup.reset_for(&mlp.wup);
        self.wdown.reset_for(&mlp.wdown);
    }
}

impl SwiGlu {
    /// Random initialization with hidden width `m`.
    pub fn new(d: usize, m: usize, rng: &mut impl Rng) -> Self {
        Self {
            wgate: Linear::new(d, m, false, rng),
            wup: Linear::new(d, m, false, rng),
            wdown: Linear::new(m, d, false, rng),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> (Matrix, SwiGluCache) {
        let mut cache = SwiGluCache::default();
        let mut y = Matrix::default();
        self.forward_cached(x, &mut cache, &mut y);
        (y, cache)
    }

    /// [`forward`](Self::forward) into caller-provided cache and output
    /// buffers — bit-identical, zero steady-state allocation.
    pub fn forward_cached(&self, x: &Matrix, cache: &mut SwiGluCache, out: &mut Matrix) {
        cache.x.copy_from(x);
        self.wgate.forward_into(x, &mut cache.gate);
        self.wup.forward_into(x, &mut cache.up);
        silu_into(&cache.gate, &mut cache.act);
        cache.prod.copy_from(&cache.act);
        for (p, &u) in cache
            .prod
            .as_mut_slice()
            .iter_mut()
            .zip(cache.up.as_slice())
        {
            *p *= u;
        }
        self.wdown.forward_into(&cache.prod, out);
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&self, cache: &SwiGluCache, dy: &Matrix, grads: &mut SwiGluGrads) -> Matrix {
        let mut scratch = MlpTrainScratch::default();
        let mut dx = Matrix::default();
        self.backward_with(cache, dy, grads, &mut scratch, &mut dx);
        dx
    }

    /// [`backward`](Self::backward) with caller-provided scratch —
    /// bit-identical gradients, zero steady-state allocation.
    pub fn backward_with(
        &self,
        cache: &SwiGluCache,
        dy: &Matrix,
        grads: &mut SwiGluGrads,
        scratch: &mut MlpTrainScratch,
        dx: &mut Matrix,
    ) {
        let MlpTrainScratch {
            d1: dprod,
            d2: dact,
            d3: dup,
            d4: dgate,
            dx_tmp,
            lin_tmp,
        } = scratch;
        self.wdown
            .backward_with(&cache.prod, dy, &mut grads.wdown, lin_tmp, dprod);
        dact.copy_from(dprod);
        for (a, &u) in dact.as_mut_slice().iter_mut().zip(cache.up.as_slice()) {
            *a *= u;
        }
        dup.copy_from(dprod);
        for (u, &a) in dup.as_mut_slice().iter_mut().zip(cache.act.as_slice()) {
            *u *= a;
        }
        crate::activation::silu_backward_into(&cache.gate, dact, dgate);
        self.wgate
            .backward_with(&cache.x, dgate, &mut grads.wgate, lin_tmp, dx);
        self.wup
            .backward_with(&cache.x, dup, &mut grads.wup, lin_tmp, dx_tmp);
        dx.add_assign(dx_tmp);
    }

    /// Zero-filled gradient buffers.
    pub fn zero_grads(&self) -> SwiGluGrads {
        let mut grads = SwiGluGrads::default();
        grads.reset_for(self);
        grads
    }
}

/// Reusable temporaries for the MLP backward passes (`d1..d4` hold the
/// pass-specific intermediates — `dprod`/`dact`/`dup`/`dgate` for
/// [`SwiGlu`], `dhidden`/`dpre` for [`ReluMlp`]). Fully overwritten
/// before use; contents never influence results.
#[derive(Debug, Default)]
pub struct MlpTrainScratch {
    d1: Matrix,
    d2: Matrix,
    d3: Matrix,
    d4: Matrix,
    dx_tmp: Matrix,
    lin_tmp: Matrix,
}

// ---------------------------------------------------------------------------
// ReLU MLP (controller)
// ---------------------------------------------------------------------------

/// Two-layer MLP: `fc2( relu(x @ fc1 + b1) ) + b2`.
#[derive(Debug, Clone, PartialEq)]
pub struct ReluMlp {
    /// First layer `(d, m)`.
    pub fc1: Linear,
    /// Second layer `(m, d)`.
    pub fc2: Linear,
}

/// Cached forward state for [`ReluMlp`].
///
/// `Default` yields an empty cache whose buffers
/// [`ReluMlp::forward_cached`] fills and reuses across samples.
#[derive(Debug, Clone, Default)]
pub struct ReluMlpCache {
    x: Matrix,
    pre: Matrix,
    hidden: Matrix,
}

/// Gradient buffers for [`ReluMlp`].
#[derive(Debug, Clone, Default)]
pub struct ReluMlpGrads {
    /// First-layer gradients.
    pub fc1: LinearGrads,
    /// Second-layer gradients.
    pub fc2: LinearGrads,
}

impl ReluMlpGrads {
    /// Zeroes both buffers in place, (re)shaped for `mlp` (contents
    /// identical to [`ReluMlp::zero_grads`], storage kept).
    pub fn reset_for(&mut self, mlp: &ReluMlp) {
        self.fc1.reset_for(&mlp.fc1);
        self.fc2.reset_for(&mlp.fc2);
    }
}

impl ReluMlp {
    /// Random initialization with hidden width `m`.
    pub fn new(d: usize, m: usize, rng: &mut impl Rng) -> Self {
        Self {
            fc1: Linear::new(d, m, true, rng),
            fc2: Linear::new(m, d, true, rng),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> (Matrix, ReluMlpCache) {
        let mut cache = ReluMlpCache::default();
        let mut y = Matrix::default();
        self.forward_cached(x, &mut cache, &mut y);
        (y, cache)
    }

    /// [`forward`](Self::forward) into caller-provided cache and output
    /// buffers — bit-identical, zero steady-state allocation.
    pub fn forward_cached(&self, x: &Matrix, cache: &mut ReluMlpCache, out: &mut Matrix) {
        cache.x.copy_from(x);
        self.fc1.forward_into(x, &mut cache.pre);
        relu_into(&cache.pre, &mut cache.hidden);
        self.fc2.forward_into(&cache.hidden, out);
    }

    /// Backward pass; returns `dx`.
    pub fn backward(&self, cache: &ReluMlpCache, dy: &Matrix, grads: &mut ReluMlpGrads) -> Matrix {
        let mut scratch = MlpTrainScratch::default();
        let mut dx = Matrix::default();
        self.backward_with(cache, dy, grads, &mut scratch, &mut dx);
        dx
    }

    /// [`backward`](Self::backward) with caller-provided scratch —
    /// bit-identical gradients, zero steady-state allocation.
    pub fn backward_with(
        &self,
        cache: &ReluMlpCache,
        dy: &Matrix,
        grads: &mut ReluMlpGrads,
        scratch: &mut MlpTrainScratch,
        dx: &mut Matrix,
    ) {
        let MlpTrainScratch {
            d1: dhidden,
            d2: dpre,
            lin_tmp,
            ..
        } = scratch;
        self.fc2
            .backward_with(&cache.hidden, dy, &mut grads.fc2, lin_tmp, dhidden);
        crate::activation::relu_backward_into(&cache.pre, dhidden, dpre);
        self.fc1
            .backward_with(&cache.x, dpre, &mut grads.fc1, lin_tmp, dx);
    }

    /// Zero-filled gradient buffers.
    pub fn zero_grads(&self) -> ReluMlpGrads {
        let mut grads = ReluMlpGrads::default();
        grads.reset_for(self);
        grads
    }
}

// ---------------------------------------------------------------------------
// Planner block (pre-RMSNorm, SwiGLU)
// ---------------------------------------------------------------------------

/// One planner transformer layer.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerBlock {
    /// Causal self-attention.
    pub attn: Mha,
    /// Gated MLP.
    pub mlp: SwiGlu,
}

/// Cached forward state for [`PlannerBlock`].
///
/// `Default` yields an empty cache that
/// [`PlannerBlock::forward_cached`] fills and reuses across samples.
#[derive(Debug, Clone, Default)]
pub struct PlannerBlockCache {
    n1: Matrix,
    n1_stats: NormStats,
    attn: MhaCache,
    n2: Matrix,
    n2_stats: NormStats,
    mlp: SwiGluCache,
}

/// Gradient buffers for [`PlannerBlock`].
#[derive(Debug, Clone, Default)]
pub struct PlannerBlockGrads {
    /// Attention gradients.
    pub attn: MhaGrads,
    /// MLP gradients.
    pub mlp: SwiGluGrads,
}

impl PlannerBlockGrads {
    /// Zeroes all buffers in place, (re)shaped for `block` (contents
    /// identical to [`PlannerBlock::zero_grads`], storage kept).
    pub fn reset_for(&mut self, block: &PlannerBlock) {
        self.attn.reset_for(&block.attn);
        self.mlp.reset_for(&block.mlp);
    }
}

/// Reusable temporaries shared by the training forward/backward of
/// [`PlannerBlock`] and [`ControllerBlock`]. One instance serves every
/// layer of a stacked model and every sample of a batch in turn; every
/// buffer is fully overwritten before use.
#[derive(Debug, Default)]
pub struct BlockTrainScratch {
    attn: MhaTrainScratch,
    mlp: MlpTrainScratch,
    attn_out: Matrix,
    y: Matrix,
    mlp_out: Matrix,
    dn1: Matrix,
    dn2: Matrix,
    norm_tmp: Matrix,
}

impl BlockTrainScratch {
    /// The `fc1` pre-activation gradient rows (`dpre`) left behind by the
    /// most recent [`ControllerBlock::backward_with`] /
    /// [`ReluMlp::backward_with`] call through this scratch.
    ///
    /// Data-parallel training snapshots this between block backwards: the
    /// bias gradient `fc1.db` folds `dpre` row by row, so replaying those
    /// exact rows (in sample order) is what keeps the parallel
    /// reduction bit-identical to the sequential loop. Valid only until
    /// the next backward call through the same scratch.
    pub fn relu_fc1_dy(&self) -> &Matrix {
        &self.mlp.d2
    }
}

impl PlannerBlock {
    /// Random initialization.
    pub fn new(d: usize, m: usize, heads: usize, rng: &mut impl Rng) -> Self {
        Self {
            attn: Mha::new(d, heads, true, rng),
            mlp: SwiGlu::new(d, m, rng),
        }
    }

    /// Forward: `y = x + attn(rms(x)); z = y + mlp(rms(y))`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, PlannerBlockCache) {
        let mut cache = PlannerBlockCache::default();
        let mut scratch = BlockTrainScratch::default();
        let mut z = Matrix::default();
        self.forward_cached(x, &mut cache, &mut scratch, &mut z);
        (z, cache)
    }

    /// [`forward`](Self::forward) into caller-provided cache and scratch
    /// buffers — bit-identical activations and cache, zero steady-state
    /// allocation.
    pub fn forward_cached(
        &self,
        x: &Matrix,
        cache: &mut PlannerBlockCache,
        scratch: &mut BlockTrainScratch,
        out: &mut Matrix,
    ) {
        use crate::norm::rmsnorm_with_stats_into;
        rmsnorm_with_stats_into(x, &mut cache.n1, &mut cache.n1_stats);
        self.attn.forward_cached(
            &cache.n1,
            &mut cache.attn,
            &mut scratch.attn,
            &mut scratch.attn_out,
        );
        scratch.y.copy_from(x);
        scratch.y.add_assign(&scratch.attn_out);
        rmsnorm_with_stats_into(&scratch.y, &mut cache.n2, &mut cache.n2_stats);
        self.mlp
            .forward_cached(&cache.n2, &mut cache.mlp, &mut scratch.mlp_out);
        out.copy_from(&scratch.y);
        out.add_assign(&scratch.mlp_out);
    }

    /// Backward pass; returns `dx`.
    pub fn backward(
        &self,
        cache: &PlannerBlockCache,
        dz: &Matrix,
        grads: &mut PlannerBlockGrads,
    ) -> Matrix {
        let mut scratch = BlockTrainScratch::default();
        let mut dx = Matrix::default();
        self.backward_with(cache, dz, grads, &mut scratch, &mut dx);
        dx
    }

    /// [`backward`](Self::backward) with caller-provided scratch —
    /// bit-identical gradients (every residual sum keeps the allocating
    /// form's order), zero steady-state allocation.
    pub fn backward_with(
        &self,
        cache: &PlannerBlockCache,
        dz: &Matrix,
        grads: &mut PlannerBlockGrads,
        scratch: &mut BlockTrainScratch,
        dx: &mut Matrix,
    ) {
        use crate::norm::rmsnorm_backward_into;
        // z = y + mlp(n2)
        self.mlp.backward_with(
            &cache.mlp,
            dz,
            &mut grads.mlp,
            &mut scratch.mlp,
            &mut scratch.dn2,
        );
        rmsnorm_backward_into(
            &cache.n2,
            &cache.n2_stats,
            &scratch.dn2,
            &mut scratch.norm_tmp,
        );
        // `dx` plays the role of `dy` from here on.
        dx.copy_from(dz);
        dx.add_assign(&scratch.norm_tmp);
        // y = x + attn(n1)
        self.attn.backward_with(
            &cache.attn,
            dx,
            &mut grads.attn,
            &mut scratch.attn,
            &mut scratch.dn1,
        );
        rmsnorm_backward_into(
            &cache.n1,
            &cache.n1_stats,
            &scratch.dn1,
            &mut scratch.norm_tmp,
        );
        dx.add_assign(&scratch.norm_tmp);
    }

    /// Zero-filled gradient buffers.
    pub fn zero_grads(&self) -> PlannerBlockGrads {
        let mut grads = PlannerBlockGrads::default();
        grads.reset_for(self);
        grads
    }
}

// ---------------------------------------------------------------------------
// Controller block (pre-LayerNorm, ReLU MLP)
// ---------------------------------------------------------------------------

/// One controller transformer layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerBlock {
    /// Bidirectional self-attention.
    pub attn: Mha,
    /// ReLU MLP.
    pub mlp: ReluMlp,
}

/// Cached forward state for [`ControllerBlock`].
///
/// `Default` yields an empty cache that
/// [`ControllerBlock::forward_cached`] fills and reuses across samples.
#[derive(Debug, Clone, Default)]
pub struct ControllerBlockCache {
    n1: Matrix,
    n1_stats: NormStats,
    attn: MhaCache,
    n2: Matrix,
    n2_stats: NormStats,
    mlp: ReluMlpCache,
}

/// Gradient buffers for [`ControllerBlock`].
#[derive(Debug, Clone, Default)]
pub struct ControllerBlockGrads {
    /// Attention gradients.
    pub attn: MhaGrads,
    /// MLP gradients.
    pub mlp: ReluMlpGrads,
}

impl ControllerBlockGrads {
    /// Zeroes all buffers in place, (re)shaped for `block` (contents
    /// identical to [`ControllerBlock::zero_grads`], storage kept).
    pub fn reset_for(&mut self, block: &ControllerBlock) {
        self.attn.reset_for(&block.attn);
        self.mlp.reset_for(&block.mlp);
    }
}

impl ControllerBlock {
    /// Random initialization.
    pub fn new(d: usize, m: usize, heads: usize, rng: &mut impl Rng) -> Self {
        Self {
            attn: Mha::new(d, heads, false, rng),
            mlp: ReluMlp::new(d, m, rng),
        }
    }

    /// Forward: `y = x + attn(ln(x)); z = y + mlp(ln(y))`.
    pub fn forward(&self, x: &Matrix) -> (Matrix, ControllerBlockCache) {
        let mut cache = ControllerBlockCache::default();
        let mut scratch = BlockTrainScratch::default();
        let mut z = Matrix::default();
        self.forward_cached(x, &mut cache, &mut scratch, &mut z);
        (z, cache)
    }

    /// [`forward`](Self::forward) into caller-provided cache and scratch
    /// buffers — bit-identical activations and cache, zero steady-state
    /// allocation.
    pub fn forward_cached(
        &self,
        x: &Matrix,
        cache: &mut ControllerBlockCache,
        scratch: &mut BlockTrainScratch,
        out: &mut Matrix,
    ) {
        use crate::norm::layernorm_with_stats_into;
        layernorm_with_stats_into(x, &mut cache.n1, &mut cache.n1_stats);
        self.attn.forward_cached(
            &cache.n1,
            &mut cache.attn,
            &mut scratch.attn,
            &mut scratch.attn_out,
        );
        scratch.y.copy_from(x);
        scratch.y.add_assign(&scratch.attn_out);
        layernorm_with_stats_into(&scratch.y, &mut cache.n2, &mut cache.n2_stats);
        self.mlp
            .forward_cached(&cache.n2, &mut cache.mlp, &mut scratch.mlp_out);
        out.copy_from(&scratch.y);
        out.add_assign(&scratch.mlp_out);
    }

    /// Backward pass; returns `dx`.
    pub fn backward(
        &self,
        cache: &ControllerBlockCache,
        dz: &Matrix,
        grads: &mut ControllerBlockGrads,
    ) -> Matrix {
        let mut scratch = BlockTrainScratch::default();
        let mut dx = Matrix::default();
        self.backward_with(cache, dz, grads, &mut scratch, &mut dx);
        dx
    }

    /// [`backward`](Self::backward) with caller-provided scratch —
    /// bit-identical gradients, zero steady-state allocation.
    pub fn backward_with(
        &self,
        cache: &ControllerBlockCache,
        dz: &Matrix,
        grads: &mut ControllerBlockGrads,
        scratch: &mut BlockTrainScratch,
        dx: &mut Matrix,
    ) {
        use crate::norm::layernorm_backward_into;
        self.mlp.backward_with(
            &cache.mlp,
            dz,
            &mut grads.mlp,
            &mut scratch.mlp,
            &mut scratch.dn2,
        );
        layernorm_backward_into(
            &cache.n2,
            &cache.n2_stats,
            &scratch.dn2,
            &mut scratch.norm_tmp,
        );
        dx.copy_from(dz);
        dx.add_assign(&scratch.norm_tmp);
        self.attn.backward_with(
            &cache.attn,
            dx,
            &mut grads.attn,
            &mut scratch.attn,
            &mut scratch.dn1,
        );
        layernorm_backward_into(
            &cache.n1,
            &cache.n1_stats,
            &scratch.dn1,
            &mut scratch.norm_tmp,
        );
        dx.add_assign(&scratch.norm_tmp);
    }

    /// Zero-filled gradient buffers.
    pub fn zero_grads(&self) -> ControllerBlockGrads {
        let mut grads = ControllerBlockGrads::default();
        grads.reset_for(self);
        grads
    }
}

// ---------------------------------------------------------------------------
// Quantized deployment blocks
// ---------------------------------------------------------------------------

/// Captures the pre-normalization residual activations of a quantized
/// forward pass (for the Fig. 5 i–l activation studies).
#[derive(Debug, Clone, Default)]
pub struct ActivationTap {
    /// Pre-norm residual activations, one matrix per block visited.
    pub pre_norm: Vec<Matrix>,
}

/// Quantized planner block.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantPlannerBlock {
    /// Quantized attention.
    pub attn: QuantMha,
    /// Quantized gate projection.
    pub wgate: QuantLinear,
    /// Quantized up projection.
    pub wup: QuantLinear,
    /// Quantized down projection.
    pub wdown: QuantLinear,
}

impl QuantPlannerBlock {
    /// Quantizes a trained block with calibration ranges for each linear.
    #[allow(clippy::too_many_arguments)]
    pub fn from_calibrated(
        block: &PlannerBlock,
        cal_q: CalRange,
        cal_k: CalRange,
        cal_v: CalRange,
        cal_o: CalRange,
        cal_gate: CalRange,
        cal_up: CalRange,
        cal_down: CalRange,
        margin: f32,
        precision: Precision,
    ) -> Self {
        Self {
            attn: QuantMha::from_calibrated(
                &block.attn,
                cal_q,
                cal_k,
                cal_v,
                cal_o,
                margin,
                precision,
            ),
            wgate: QuantLinear::from_calibrated(
                &block.mlp.wgate,
                cal_gate.0,
                cal_gate.1,
                margin,
                precision,
            ),
            wup: QuantLinear::from_calibrated(
                &block.mlp.wup,
                cal_up.0,
                cal_up.1,
                margin,
                precision,
            ),
            wdown: QuantLinear::from_calibrated(
                &block.mlp.wdown,
                cal_down.0,
                cal_down.1,
                margin,
                precision,
            ),
        }
    }

    /// Forward pass on the accelerator; optionally taps pre-norm residuals.
    pub fn forward(
        &self,
        accel: &mut Accelerator,
        x: &Matrix,
        layer: usize,
        tap: Option<&mut ActivationTap>,
    ) -> Matrix {
        let mut scratch = QuantPlannerBlockScratch::default();
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(accel, x, layer, tap, &mut scratch, &mut out);
        out
    }

    /// [`forward`](Self::forward) with caller-provided scratch and output
    /// buffers — bit-identical results, zero steady-state allocation
    /// (except the activation-tap copies, which only study harnesses
    /// request).
    pub fn forward_into(
        &self,
        accel: &mut Accelerator,
        x: &Matrix,
        layer: usize,
        tap: Option<&mut ActivationTap>,
        scratch: &mut QuantPlannerBlockScratch,
        out: &mut Matrix,
    ) {
        use crate::norm::rmsnorm_into;
        if let Some(tap) = tap {
            tap.pre_norm.push(x.clone());
        }
        rmsnorm_into(x, &mut scratch.norm);
        self.attn.forward_into(
            accel,
            &scratch.norm,
            Unit::Planner,
            layer,
            &mut scratch.attn,
            &mut scratch.attn_out,
        );
        scratch.y.copy_from(x);
        scratch.y.add_assign(&scratch.attn_out);
        rmsnorm_into(&scratch.y, &mut scratch.norm);
        self.wgate.forward_into(
            accel,
            &scratch.norm,
            LayerCtx::new(Unit::Planner, Component::Gate, layer),
            &mut scratch.gate,
        );
        self.wup.forward_into(
            accel,
            &scratch.norm,
            LayerCtx::new(Unit::Planner, Component::Up, layer),
            &mut scratch.up,
        );
        // act ⊙ up, written over the gate activation.
        silu_into(&scratch.gate, &mut scratch.act);
        for (a, &u) in scratch
            .act
            .as_mut_slice()
            .iter_mut()
            .zip(scratch.up.as_slice())
        {
            *a *= u;
        }
        self.wdown.forward_into(
            accel,
            &scratch.act,
            LayerCtx::new(Unit::Planner, Component::Down, layer),
            &mut scratch.mlp_out,
        );
        out.copy_from(&scratch.y);
        out.add_assign(&scratch.mlp_out);
    }
}

/// Reusable buffers for one [`QuantPlannerBlock::forward_into`] call.
/// One instance serves every layer of a stacked forward pass in turn.
#[derive(Debug, Default)]
pub struct QuantPlannerBlockScratch {
    attn: MhaScratch,
    norm: Matrix,
    attn_out: Matrix,
    y: Matrix,
    gate: Matrix,
    up: Matrix,
    act: Matrix,
    mlp_out: Matrix,
}

/// Quantized controller block.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantControllerBlock {
    /// Quantized attention.
    pub attn: QuantMha,
    /// Quantized first MLP layer.
    pub fc1: QuantLinear,
    /// Quantized second MLP layer.
    pub fc2: QuantLinear,
}

impl QuantControllerBlock {
    /// Quantizes a trained block with calibration ranges for each linear.
    #[allow(clippy::too_many_arguments)]
    pub fn from_calibrated(
        block: &ControllerBlock,
        cal_q: CalRange,
        cal_k: CalRange,
        cal_v: CalRange,
        cal_o: CalRange,
        cal_fc1: CalRange,
        cal_fc2: CalRange,
        margin: f32,
        precision: Precision,
    ) -> Self {
        Self {
            attn: QuantMha::from_calibrated(
                &block.attn,
                cal_q,
                cal_k,
                cal_v,
                cal_o,
                margin,
                precision,
            ),
            fc1: QuantLinear::from_calibrated(
                &block.mlp.fc1,
                cal_fc1.0,
                cal_fc1.1,
                margin,
                precision,
            ),
            fc2: QuantLinear::from_calibrated(
                &block.mlp.fc2,
                cal_fc2.0,
                cal_fc2.1,
                margin,
                precision,
            ),
        }
    }

    /// Forward pass on the accelerator; optionally taps pre-norm residuals.
    pub fn forward(
        &self,
        accel: &mut Accelerator,
        x: &Matrix,
        layer: usize,
        tap: Option<&mut ActivationTap>,
    ) -> Matrix {
        let mut scratch = QuantControllerBlockScratch::default();
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(accel, x, layer, tap, &mut scratch, &mut out);
        out
    }

    /// [`forward`](Self::forward) with caller-provided scratch and output
    /// buffers — bit-identical results, zero steady-state allocation
    /// (except the activation-tap copies, which only study harnesses
    /// request).
    pub fn forward_into(
        &self,
        accel: &mut Accelerator,
        x: &Matrix,
        layer: usize,
        tap: Option<&mut ActivationTap>,
        scratch: &mut QuantControllerBlockScratch,
        out: &mut Matrix,
    ) {
        use crate::norm::layernorm_into;
        if let Some(tap) = tap {
            tap.pre_norm.push(x.clone());
        }
        layernorm_into(x, &mut scratch.norm);
        self.attn.forward_into(
            accel,
            &scratch.norm,
            Unit::Controller,
            layer,
            &mut scratch.attn,
            &mut scratch.attn_out,
        );
        scratch.y.copy_from(x);
        scratch.y.add_assign(&scratch.attn_out);
        layernorm_into(&scratch.y, &mut scratch.norm);
        self.fc1.forward_into(
            accel,
            &scratch.norm,
            LayerCtx::new(Unit::Controller, Component::Fc1, layer),
            &mut scratch.pre,
        );
        relu_into(&scratch.pre, &mut scratch.hidden);
        self.fc2.forward_into(
            accel,
            &scratch.hidden,
            LayerCtx::new(Unit::Controller, Component::Fc2, layer),
            &mut scratch.mlp_out,
        );
        out.copy_from(&scratch.y);
        out.add_assign(&scratch.mlp_out);
    }
}

/// Reusable buffers for one [`QuantControllerBlock::forward_into`] call.
/// One instance serves every layer of a stacked forward pass in turn.
#[derive(Debug, Default)]
pub struct QuantControllerBlockScratch {
    attn: MhaScratch,
    norm: Matrix,
    attn_out: Matrix,
    y: Matrix,
    pre: Matrix,
    hidden: Matrix,
    mlp_out: Matrix,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::silu;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planner_block_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let block = PlannerBlock::new(16, 32, 4, &mut rng);
        let x = Matrix::random_uniform(5, 16, 1.0, &mut rng);
        let (z, _) = block.forward(&x);
        assert_eq!(z.shape(), (5, 16));
    }

    #[test]
    fn controller_block_preserves_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let block = ControllerBlock::new(16, 32, 4, &mut rng);
        let x = Matrix::random_uniform(4, 16, 1.0, &mut rng);
        let (z, _) = block.forward(&x);
        assert_eq!(z.shape(), (4, 16));
    }

    #[test]
    fn planner_block_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(3);
        let block = PlannerBlock::new(8, 16, 2, &mut rng);
        let x = Matrix::random_uniform(3, 8, 0.7, &mut rng);
        let coeff = Matrix::random_uniform(3, 8, 1.0, &mut rng);
        let loss = |b: &PlannerBlock, xx: &Matrix| {
            let (z, _) = b.forward(xx);
            z.as_slice()
                .iter()
                .zip(coeff.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (_, cache) = block.forward(&x);
        let mut grads = block.zero_grads();
        let dx = block.backward(&cache, &coeff, &mut grads);
        let eps = 1e-2;
        for &(r, c) in &[(0usize, 0usize), (1, 4), (2, 7)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let fd = (loss(&block, &xp) - loss(&block, &xm)) / (2.0 * eps);
            assert!(
                (dx.get(r, c) - fd).abs() < 0.08 * (1.0 + fd.abs()),
                "dx mismatch at ({r},{c}): {} vs {fd}",
                dx.get(r, c)
            );
        }
        // Weight-gradient spot check (gate projection).
        let (r, c) = (2usize, 3usize);
        let mut bp = block.clone();
        bp.mlp.wgate.w.set(r, c, block.mlp.wgate.w.get(r, c) + eps);
        let mut bm = block.clone();
        bm.mlp.wgate.w.set(r, c, block.mlp.wgate.w.get(r, c) - eps);
        let fd = (loss(&bp, &x) - loss(&bm, &x)) / (2.0 * eps);
        assert!(
            (grads.mlp.wgate.dw.get(r, c) - fd).abs() < 0.08 * (1.0 + fd.abs()),
            "wgate grad mismatch"
        );
    }

    #[test]
    fn controller_block_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(4);
        let block = ControllerBlock::new(8, 16, 2, &mut rng);
        let x = Matrix::random_uniform(3, 8, 0.7, &mut rng);
        let coeff = Matrix::random_uniform(3, 8, 1.0, &mut rng);
        let loss = |b: &ControllerBlock, xx: &Matrix| {
            let (z, _) = b.forward(xx);
            z.as_slice()
                .iter()
                .zip(coeff.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let (_, cache) = block.forward(&x);
        let mut grads = block.zero_grads();
        let dx = block.backward(&cache, &coeff, &mut grads);
        let eps = 1e-2;
        for &(r, c) in &[(0usize, 1usize), (2, 6)] {
            let mut xp = x.clone();
            xp.set(r, c, x.get(r, c) + eps);
            let mut xm = x.clone();
            xm.set(r, c, x.get(r, c) - eps);
            let fd = (loss(&block, &xp) - loss(&block, &xm)) / (2.0 * eps);
            assert!(
                (dx.get(r, c) - fd).abs() < 0.08 * (1.0 + fd.abs()),
                "dx mismatch at ({r},{c}): {} vs {fd}",
                dx.get(r, c)
            );
        }
    }

    #[test]
    fn quantized_planner_block_tracks_float_block() {
        let mut rng = StdRng::seed_from_u64(5);
        let block = PlannerBlock::new(16, 32, 4, &mut rng);
        let x = Matrix::random_uniform(4, 16, 1.0, &mut rng);
        let (z_float, cache) = block.forward(&x);
        // Crude calibration from this single batch.
        let n = crate::norm::rmsnorm(&x);
        let a = block.attn.forward(&n).0;
        let y = x.add(&a);
        let n2 = crate::norm::rmsnorm(&y);
        let gate = block.mlp.wgate.forward(&n2);
        let up = block.mlp.wup.forward(&n2);
        let prod = Matrix::from_fn(gate.rows(), gate.cols(), |r, c| {
            silu(&gate).get(r, c) * up.get(r, c)
        });
        let down = block.mlp.wdown.forward(&prod);
        let q = QuantPlannerBlock::from_calibrated(
            &block,
            (n.max_abs(), cache.attn.q.max_abs()),
            (n.max_abs(), cache.attn.k.max_abs()),
            (n.max_abs(), cache.attn.v.max_abs()),
            (cache.attn.context.max_abs(), a.max_abs()),
            (n2.max_abs(), gate.max_abs()),
            (n2.max_abs(), up.max_abs()),
            (prod.max_abs(), down.max_abs()),
            1.25,
            Precision::Int8,
        );
        let mut accel = Accelerator::ideal(0);
        let z_quant = q.forward(&mut accel, &x, 0, None);
        let err = z_float.max_abs_diff(&z_quant);
        assert!(err < 0.3, "quantized planner block error {err}");
    }

    #[test]
    fn activation_tap_collects_pre_norm_state() {
        let mut rng = StdRng::seed_from_u64(6);
        let block = ControllerBlock::new(16, 32, 4, &mut rng);
        let x = Matrix::random_uniform(4, 16, 1.0, &mut rng);
        let (y, _) = block.forward(&x);
        let n1 = crate::norm::layernorm(&x);
        let q = QuantControllerBlock::from_calibrated(
            &block,
            (n1.max_abs(), 5.0),
            (n1.max_abs(), 5.0),
            (n1.max_abs(), 5.0),
            (5.0, 5.0),
            (5.0, y.max_abs() * 2.0),
            (5.0, y.max_abs() * 2.0),
            1.25,
            Precision::Int8,
        );
        let mut accel = Accelerator::ideal(0);
        let mut tap = ActivationTap::default();
        let _ = q.forward(&mut accel, &x, 0, Some(&mut tap));
        assert_eq!(tap.pre_norm.len(), 1);
        assert_eq!(tap.pre_norm[0].shape(), x.shape());
    }
}
