//! Dense layers: trainable `f32` linear maps and their quantized,
//! accelerator-backed deployment form.

use create_accel::{Accelerator, LayerCtx};
use create_tensor::{Matrix, Precision, QuantMatrix, QuantParams};
use rand::Rng;

/// A trainable linear layer `y = x @ w + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linear {
    /// Weight, shape `(in, out)`.
    pub w: Matrix,
    /// Optional bias, length `out`.
    pub b: Option<Vec<f32>>,
}

impl Linear {
    /// Kaiming-initialized layer.
    pub fn new(fan_in: usize, fan_out: usize, bias: bool, rng: &mut impl Rng) -> Self {
        Self {
            w: Matrix::kaiming(fan_in, fan_out, fan_in, rng),
            b: if bias { Some(vec![0.0; fan_out]) } else { None },
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::default();
        self.forward_into(x, &mut y);
        y
    }

    /// [`forward`](Self::forward) into a caller-provided output matrix
    /// (bit-identical, storage reused — the training forward pass runs
    /// through here so the steady-state train step allocates nothing).
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w, out);
        if let Some(b) = &self.b {
            for r in 0..out.rows() {
                for (v, add) in out.row_mut(r).iter_mut().zip(b) {
                    *v += add;
                }
            }
        }
    }

    /// Backward pass: returns `dx` and fills `grads`.
    pub fn backward(&self, x: &Matrix, dy: &Matrix, grads: &mut LinearGrads) -> Matrix {
        let mut tmp = Matrix::default();
        let mut dx = Matrix::default();
        self.backward_with(x, dy, grads, &mut tmp, &mut dx);
        dx
    }

    /// [`backward`](Self::backward) with caller-provided scratch: `tmp`
    /// receives the weight-gradient GEMM before it is accumulated (the
    /// same compute-then-add order as the allocating form, so results
    /// are bit-identical) and `dx` receives the input gradient. Both
    /// buffers are fully overwritten; storage is reused.
    pub fn backward_with(
        &self,
        x: &Matrix,
        dy: &Matrix,
        grads: &mut LinearGrads,
        tmp: &mut Matrix,
        dx: &mut Matrix,
    ) {
        self.accumulate_grads(x, dy, grads, tmp);
        dy.matmul_nt_into(&self.w, dx);
    }

    /// The parameter-gradient half of [`backward`](Self::backward)
    /// (`dw`/`db` accumulation without computing `dx`) — for the first
    /// layer of a stack, whose input gradient nobody consumes.
    pub fn accumulate_grads(
        &self,
        x: &Matrix,
        dy: &Matrix,
        grads: &mut LinearGrads,
        tmp: &mut Matrix,
    ) {
        x.matmul_tn_into(dy, tmp);
        grads.dw.add_assign(tmp);
        if let Some(db) = &mut grads.db {
            for r in 0..dy.rows() {
                for (g, v) in db.iter_mut().zip(dy.row(r)) {
                    *g += v;
                }
            }
        }
    }

    /// Zero-filled gradient buffers matching this layer.
    pub fn zero_grads(&self) -> LinearGrads {
        let mut grads = LinearGrads::default();
        grads.reset_for(self);
        grads
    }
}

/// Gradient buffers for a [`Linear`] layer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinearGrads {
    /// Gradient of the weight.
    pub dw: Matrix,
    /// Gradient of the bias, when present.
    pub db: Option<Vec<f32>>,
}

impl LinearGrads {
    /// Zeroes the buffers in place, (re)shaped for `layer` — identical
    /// contents to [`Linear::zero_grads`] with the heap storage kept, so
    /// the per-batch gradient reset of a warmed-up train step allocates
    /// nothing.
    pub fn reset_for(&mut self, layer: &Linear) {
        self.dw.reset_zeros(layer.w.rows(), layer.w.cols());
        match (&mut self.db, &layer.b) {
            (db, None) => *db = None,
            (Some(db), Some(b)) => {
                db.clear();
                db.resize(b.len(), 0.0);
            }
            (db @ None, Some(b)) => *db = Some(vec![0.0; b.len()]),
        }
    }
}

/// A deployed linear layer: INT8/INT4 weight plus offline-profiled input
/// scale and output bound, executed on the [`Accelerator`].
///
/// The output bound is what the anomaly-detection units compare against —
/// after weight rotation the profiled bound shrinks, which is the AD+WR
/// synergy of the paper (Sec. 6.6).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLinear {
    w_q: QuantMatrix,
    input_params: QuantParams,
    out_bound: f32,
    bias: Option<Vec<f32>>,
}

impl QuantLinear {
    /// Quantizes `layer` given profiled calibration maxima.
    ///
    /// `input_max` is the largest |input| observed on calibration data and
    /// `output_max` the largest |output|; `margin` loosens both so that
    /// unseen golden data does not trip the detector (1.25 by default in
    /// the model builders).
    pub fn from_calibrated(
        layer: &Linear,
        input_max: f32,
        output_max: f32,
        margin: f32,
        precision: Precision,
    ) -> Self {
        assert!(margin >= 1.0, "margin must be >= 1, got {margin}");
        let input_params = QuantParams::from_max_abs(input_max * margin, precision);
        let w_q = QuantMatrix::quantize(&layer.w, precision);
        Self {
            w_q,
            input_params,
            out_bound: output_max * margin,
            bias: layer.b.clone(),
        }
    }

    /// Input quantization parameters.
    pub fn input_params(&self) -> QuantParams {
        self.input_params
    }

    /// The anomaly-detection output bound (real units).
    pub fn out_bound(&self) -> f32 {
        self.out_bound
    }

    /// The quantized weight.
    pub fn weight(&self) -> &QuantMatrix {
        &self.w_q
    }

    /// Mutable access to the stored quantized weight, for fault-injection
    /// studies that perturb deployed weights in place (the SRAM
    /// retention-fault extension). Calibration state is unaffected.
    pub fn weight_mut(&mut self) -> &mut QuantMatrix {
        &mut self.w_q
    }

    /// Output width.
    pub fn fan_out(&self) -> usize {
        self.w_q.cols()
    }

    /// Input width.
    pub fn fan_in(&self) -> usize {
        self.w_q.rows()
    }

    /// Executes the layer on the accelerator (bias added after dequant).
    pub fn forward(&self, accel: &mut Accelerator, x: &Matrix, ctx: LayerCtx) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(accel, x, ctx, &mut y);
        y
    }

    /// [`forward`](Self::forward) into a caller-provided output matrix.
    ///
    /// Bit-identical to the allocating form; together with the
    /// accelerator's persistent scratch this makes a deployed layer's
    /// steady-state forward pass allocation-free.
    pub fn forward_into(
        &self,
        accel: &mut Accelerator,
        x: &Matrix,
        ctx: LayerCtx,
        out: &mut Matrix,
    ) {
        accel.linear_into(x, &self.w_q, self.input_params, self.out_bound, ctx, out);
        if let Some(b) = &self.bias {
            for r in 0..out.rows() {
                for (v, add) in out.row_mut(r).iter_mut().zip(b) {
                    *v += add;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use create_accel::{Component, Unit};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx() -> LayerCtx {
        LayerCtx::new(Unit::Controller, Component::Fc1, 0)
    }

    #[test]
    fn forward_applies_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Linear::new(3, 2, true, &mut rng);
        layer.w = Matrix::identity(3)
            .rows_range(0, 3)
            .matmul(&Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 0.0, 0.0]));
        layer.b = Some(vec![10.0, 20.0]);
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let y = layer.forward(&x);
        assert_eq!(y.get(0, 0), 1.0 + 10.0);
        assert_eq!(y.get(0, 1), 2.0 + 20.0);
    }

    #[test]
    fn backward_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(4, 3, true, &mut rng);
        let x = Matrix::random_uniform(2, 4, 1.0, &mut rng);
        let target = Matrix::random_uniform(2, 3, 1.0, &mut rng);
        // Loss = 0.5 * ||y - target||².
        let loss = |l: &Linear, xx: &Matrix| {
            let y = l.forward(xx);
            y.sub(&target)
                .as_slice()
                .iter()
                .map(|v| 0.5 * v * v)
                .sum::<f32>()
        };
        let y = layer.forward(&x);
        let dy = y.sub(&target);
        let mut grads = layer.zero_grads();
        let dx = layer.backward(&x, &dy, &mut grads);

        // Check dw.
        let eps = 1e-3;
        for r in 0..4 {
            for c in 0..3 {
                let mut lp = layer.clone();
                lp.w.set(r, c, layer.w.get(r, c) + eps);
                let mut lm = layer.clone();
                lm.w.set(r, c, layer.w.get(r, c) - eps);
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
                assert!(
                    (grads.dw.get(r, c) - fd).abs() < 1e-2,
                    "dw mismatch at ({r},{c})"
                );
            }
        }
        // Check dx.
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp.set(r, c, x.get(r, c) + eps);
                let mut xm = x.clone();
                xm.set(r, c, x.get(r, c) - eps);
                let fd = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
                assert!((dx.get(r, c) - fd).abs() < 1e-2, "dx mismatch at ({r},{c})");
            }
        }
        // Check db.
        let db = grads.db.as_ref().expect("bias grads");
        for c in 0..3 {
            let mut lp = layer.clone();
            lp.b.as_mut().unwrap()[c] += eps;
            let mut lm = layer.clone();
            lm.b.as_mut().unwrap()[c] -= eps;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            assert!((db[c] - fd).abs() < 1e-2, "db mismatch at {c}");
        }
    }

    #[test]
    fn quantized_layer_approximates_float_layer() {
        let mut rng = StdRng::seed_from_u64(3);
        let layer = Linear::new(16, 8, true, &mut rng);
        let x = Matrix::random_uniform(4, 16, 1.0, &mut rng);
        let y_float = layer.forward(&x);
        let q = QuantLinear::from_calibrated(&layer, 1.0, y_float.max_abs(), 1.25, Precision::Int8);
        let mut accel = Accelerator::ideal(0);
        let y_quant = q.forward(&mut accel, &x, ctx());
        let err = y_float.max_abs_diff(&y_quant);
        assert!(err < 0.1, "quantization error too large: {err}");
    }

    #[test]
    fn golden_run_never_trips_anomaly_detection_on_any_backend() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = Linear::new(32, 16, false, &mut rng);
        let x = Matrix::random_uniform(8, 32, 1.0, &mut rng);
        let y_float = layer.forward(&x);
        let q = QuantLinear::from_calibrated(&layer, 1.0, y_float.max_abs(), 1.25, Precision::Int8);
        let mut outputs = Vec::new();
        for backend in create_accel::GemmBackendKind::ALL {
            let mut accel = Accelerator::new(
                create_accel::AccelConfig {
                    injector: None,
                    ad_enabled: true,
                    backend,
                    ..Default::default()
                },
                0,
            );
            outputs.push(q.forward(&mut accel, &x, ctx()));
            assert_eq!(
                accel.ad_stats().cleared,
                0,
                "AD must not fire on clean data ({backend})"
            );
        }
        for (kind, out) in create_accel::GemmBackendKind::ALL.iter().zip(&outputs) {
            assert_eq!(out, &outputs[0], "backend {kind} must agree bit-exactly");
        }
    }
}
