//! Neural-network layers for the CREATE reproduction.
//!
//! Two parallel worlds live here:
//!
//! * **Trainable `f32` layers** with hand-written backward passes
//!   ([`linear::Linear`], [`attention::Mha`], [`block::PlannerBlock`],
//!   [`block::ControllerBlock`], [`conv::Conv2d`]) plus the
//!   [`optim::AdamWConfig`] optimizer — used offline to train the planner,
//!   behaviour-clone the controller and fit the entropy predictor.
//! * **Quantized deployment layers** ([`linear::QuantLinear`],
//!   [`attention::QuantMha`], [`block::QuantPlannerBlock`],
//!   [`block::QuantControllerBlock`]) that execute their weight GEMMs on
//!   the simulated [`create_accel::Accelerator`], so voltage-underscaling
//!   bit flips and anomaly detection act on real accumulator state.
//!
//! The split mirrors the paper's method: models are trained error-free,
//! then deployed INT8-quantized on a systolic array whose voltage (and
//! therefore error rate) the CREATE framework manages.

pub mod activation;
pub mod attention;
pub mod block;
pub mod calibrate;
pub mod conv;
pub mod linear;
pub mod norm;
pub mod optim;

pub use activation::{entropy, logits_entropy, softmax_rows};
pub use attention::{Mha, MhaScratch, MhaTrainScratch, QuantMha};
pub use block::{
    ActivationTap, BlockTrainScratch, ControllerBlock, PlannerBlock, QuantControllerBlock,
    QuantControllerBlockScratch, QuantPlannerBlock, QuantPlannerBlockScratch,
};
pub use conv::{Conv2d, Tensor3};
pub use linear::{Linear, QuantLinear};
pub use optim::{AdamState, AdamWConfig};
