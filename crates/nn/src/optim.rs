//! AdamW with decoupled weight decay (paper Sec. 6.1 trains the entropy
//! predictor with AdamW, weight decay 1e-2, lr 1e-4).

use create_tensor::Matrix;

/// AdamW hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamWConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for AdamWConfig {
    fn default() -> Self {
        Self {
            lr: 1e-4,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 1e-2,
        }
    }
}

impl AdamWConfig {
    /// Convenience constructor overriding the learning rate.
    pub fn with_lr(lr: f32) -> Self {
        Self {
            lr,
            ..Self::default()
        }
    }
}

/// Per-parameter-tensor optimizer state (first/second moments).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl AdamState {
    /// State sized for `n` parameters.
    pub fn new(n: usize) -> Self {
        Self {
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Applies one AdamW update to a flat parameter slice.
    ///
    /// `t` is the 1-based global step (for bias correction).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the state.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32], cfg: &AdamWConfig, t: u64) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        assert_eq!(params.len(), self.m.len(), "state length mismatch");
        let t = t.max(1);
        let bc1 = 1.0 - cfg.beta1.powi(t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = cfg.beta1 * self.m[i] + (1.0 - cfg.beta1) * g;
            self.v[i] = cfg.beta2 * self.v[i] + (1.0 - cfg.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= cfg.lr * (m_hat / (v_hat.sqrt() + cfg.eps) + cfg.weight_decay * params[i]);
        }
    }

    /// Applies one AdamW update to a [`Matrix`] parameter
    /// (allocation-free: the gradient slice is borrowed directly).
    pub fn step_matrix(&mut self, params: &mut Matrix, grads: &Matrix, cfg: &AdamWConfig, t: u64) {
        assert_eq!(params.shape(), grads.shape(), "param/grad shape mismatch");
        self.step(params.as_mut_slice(), grads.as_slice(), cfg, t);
    }

    /// Zeroes the moments in place, resized for `n` parameters — the
    /// state of a freshly constructed [`AdamState::new`] without giving
    /// up the existing heap buffers. Training scratch reuse calls this at
    /// the start of every training run.
    pub fn reset(&mut self, n: usize) {
        self.m.clear();
        self.m.resize(n, 0.0);
        self.v.clear();
        self.v.resize(n, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_a_quadratic() {
        // Minimize f(x) = (x-3)² from x=0.
        let cfg = AdamWConfig {
            lr: 0.1,
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        let mut x = vec![0.0f32];
        let mut state = AdamState::new(1);
        for t in 1..=500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            state.step(&mut x, &g, &cfg, t);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "converged to {}", x[0]);
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        let cfg = AdamWConfig {
            lr: 0.1,
            weight_decay: 0.1,
            ..AdamWConfig::default()
        };
        let mut x = vec![1.0f32];
        let mut state = AdamState::new(1);
        for t in 1..=100 {
            state.step(&mut x, &[0.0], &cfg, t);
        }
        assert!(x[0] < 0.5, "decay should shrink the weight, got {}", x[0]);
        assert!(x[0] > 0.0);
    }

    #[test]
    fn matrix_step_matches_flat_step() {
        let cfg = AdamWConfig::with_lr(0.01);
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let g = Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]);
        let mut flat = m.as_slice().to_vec();
        let mut s1 = AdamState::new(4);
        let mut s2 = AdamState::new(4);
        s1.step_matrix(&mut m, &g, &cfg, 1);
        s2.step(&mut flat, g.as_slice(), &cfg, 1);
        assert_eq!(m.as_slice(), &flat[..]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let cfg = AdamWConfig::default();
        let mut state = AdamState::new(2);
        let mut p = vec![0.0; 3];
        state.step(&mut p, &[0.0; 3], &cfg, 1);
    }
}
