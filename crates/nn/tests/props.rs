//! Property-based tests for the NN layer invariants.

use create_nn::activation::{
    entropy, relu, relu_into, silu, silu_into, softmax_rows, softmax_rows_in_place,
};
use create_nn::norm::{layernorm, layernorm_into, rmsnorm, rmsnorm_into};
use create_nn::optim::{AdamState, AdamWConfig};
use create_tensor::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Softmax rows are probability vectors for arbitrary logits.
    #[test]
    fn softmax_rows_are_distributions(values in prop::collection::vec(-30.0f32..30.0, 2..48)) {
        let m = Matrix::from_vec(1, values.len(), values);
        let p = softmax_rows(&m);
        let sum: f32 = p.row(0).iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.row(0).iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Softmax is invariant to per-row shifts.
    #[test]
    fn softmax_shift_invariance(values in prop::collection::vec(-10.0f32..10.0, 2..16), shift in -50.0f32..50.0) {
        let a = Matrix::from_vec(1, values.len(), values.clone());
        let b = a.map(|v| v + shift);
        prop_assert!(softmax_rows(&a).max_abs_diff(&softmax_rows(&b)) < 1e-4);
    }

    /// RMSNorm output always has unit RMS; LayerNorm output has zero mean
    /// and unit variance (up to eps effects on tiny-variance rows).
    #[test]
    fn norms_standardize_rows(values in prop::collection::vec(-20.0f32..20.0, 4..64)) {
        let spread = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - values.iter().cloned().fold(f32::INFINITY, f32::min);
        prop_assume!(spread > 0.1);
        let d = values.len();
        let m = Matrix::from_vec(1, d, values);
        let r = rmsnorm(&m);
        let ms: f32 = r.row(0).iter().map(|v| v * v).sum::<f32>() / d as f32;
        prop_assert!((ms - 1.0).abs() < 1e-2);
        let l = layernorm(&m);
        let mean: f32 = l.row(0).iter().sum::<f32>() / d as f32;
        prop_assert!(mean.abs() < 1e-3);
    }

    /// RMSNorm is positively scale-invariant: rmsnorm(c·x) == rmsnorm(x).
    #[test]
    fn rmsnorm_scale_invariance(values in prop::collection::vec(-5.0f32..5.0, 4..32), c in 0.5f32..20.0) {
        let norm: f32 = values.iter().map(|v| v * v).sum::<f32>();
        prop_assume!(norm > 0.5);
        let m = Matrix::from_vec(1, values.len(), values);
        let scaled = m.scale(c);
        prop_assert!(rmsnorm(&m).max_abs_diff(&rmsnorm(&scaled)) < 1e-3);
    }

    /// ReLU is monotone and non-negative; SiLU is bounded below by its
    /// global minimum (~-0.2785) and monotone on the positive axis.
    #[test]
    fn activation_shape_properties(a in -10.0f32..10.0, b in -10.0f32..10.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let m = Matrix::from_vec(1, 2, vec![lo, hi]);
        let r = relu(&m);
        prop_assert!(r.get(0, 0) <= r.get(0, 1));
        prop_assert!(r.get(0, 0) >= 0.0);
        let s = silu(&m);
        prop_assert!(s.get(0, 0) >= -0.2786 && s.get(0, 1) >= -0.2786);
        if lo >= 0.0 {
            prop_assert!(s.get(0, 0) <= s.get(0, 1) + 1e-6);
        }
    }

    /// Entropy is maximal for the uniform distribution.
    #[test]
    fn uniform_maximizes_entropy(n in 2usize..16, tilt in 0.01f32..5.0) {
        let uniform = vec![1.0 / n as f32; n];
        let mut tilted = uniform.clone();
        tilted[0] += tilt;
        let z: f32 = tilted.iter().sum();
        for v in tilted.iter_mut() {
            *v /= z;
        }
        prop_assert!(entropy(&tilted) <= entropy(&uniform) + 1e-5);
    }

    /// Every buffer-out forward helper is bit-identical to its allocating
    /// counterpart, with a dirty scratch of a different shape.
    #[test]
    fn into_forwards_are_bit_identical(
        rows in 1usize..5,
        cols in 1usize..32,
        seed in 0u64..500,
        scale in 0.1f32..20.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::random_uniform(rows, cols, scale, &mut rng);
        let mut out = Matrix::random_uniform(2, 3, 1.0, &mut rng); // dirty
        relu_into(&x, &mut out);
        prop_assert_eq!(&out, &relu(&x));
        silu_into(&x, &mut out);
        prop_assert_eq!(&out, &silu(&x));
        layernorm_into(&x, &mut out);
        prop_assert_eq!(&out, &layernorm(&x));
        rmsnorm_into(&x, &mut out);
        prop_assert_eq!(&out, &rmsnorm(&x));
        let mut sm = x.clone();
        softmax_rows_in_place(&mut sm);
        prop_assert_eq!(&sm, &softmax_rows(&x));
    }

    /// The scratch-threaded *training* forward/backward paths are
    /// bit-identical to the allocating forms — activations, caches-in-use,
    /// accumulated gradients and input gradients — including when one
    /// cache/scratch pair is reused, dirty, across samples of different
    /// sequence lengths. This is the contract that lets `train` reuse its
    /// buffers across every sample of every epoch.
    #[test]
    fn train_scratch_reuse_is_bit_identical(seed in 0u64..120) {
        use create_nn::block::{ControllerBlock, PlannerBlock};
        use create_nn::{BlockTrainScratch, MhaTrainScratch};

        let mut rng = StdRng::seed_from_u64(seed);
        let planner = PlannerBlock::new(8, 16, 2, &mut rng);
        let controller = ControllerBlock::new(8, 16, 2, &mut rng);
        let attn = create_nn::Mha::new(8, 2, true, &mut rng);

        // Reused (and progressively dirtied) buffers.
        let mut p_cache = Default::default();
        let mut c_cache = Default::default();
        let mut a_cache = Default::default();
        let mut block_scratch = BlockTrainScratch::default();
        let mut attn_scratch = MhaTrainScratch::default();
        let mut out = Matrix::default();
        let mut dx = Matrix::default();

        // Accumulating gradient buffers, reused vs freshly allocated.
        let mut pg_new = planner.zero_grads();
        let mut pg_ref = planner.zero_grads();
        let mut cg_new = controller.zero_grads();
        let mut cg_ref = controller.zero_grads();
        let mut ag_new = attn.zero_grads();
        let mut ag_ref = attn.zero_grads();

        for rows in [3usize, 1, 5, 2] {
            let x = Matrix::random_uniform(rows, 8, 0.8, &mut rng);
            let dz = Matrix::random_uniform(rows, 8, 1.0, &mut rng);

            let (z_ref, pc_ref) = planner.forward(&x);
            planner.forward_cached(&x, &mut p_cache, &mut block_scratch, &mut out);
            prop_assert_eq!(&out, &z_ref);
            let dx_ref = planner.backward(&pc_ref, &dz, &mut pg_ref);
            planner.backward_with(&p_cache, &dz, &mut pg_new, &mut block_scratch, &mut dx);
            prop_assert_eq!(&dx, &dx_ref);
            prop_assert_eq!(&pg_new.attn.wq.dw, &pg_ref.attn.wq.dw);
            prop_assert_eq!(&pg_new.mlp.wdown.dw, &pg_ref.mlp.wdown.dw);

            let (z_ref, cc_ref) = controller.forward(&x);
            controller.forward_cached(&x, &mut c_cache, &mut block_scratch, &mut out);
            prop_assert_eq!(&out, &z_ref);
            let dx_ref = controller.backward(&cc_ref, &dz, &mut cg_ref);
            controller.backward_with(&c_cache, &dz, &mut cg_new, &mut block_scratch, &mut dx);
            prop_assert_eq!(&dx, &dx_ref);
            prop_assert_eq!(&cg_new.attn.wo.dw, &cg_ref.attn.wo.dw);
            prop_assert_eq!(&cg_new.mlp.fc1.dw, &cg_ref.mlp.fc1.dw);
            prop_assert_eq!(&cg_new.mlp.fc1.db, &cg_ref.mlp.fc1.db);

            let (y_ref, ac_ref) = attn.forward(&x);
            attn.forward_cached(&x, &mut a_cache, &mut attn_scratch, &mut out);
            prop_assert_eq!(&out, &y_ref);
            let dx_ref = attn.backward(&ac_ref, &dz, &mut ag_ref);
            attn.backward_with(&a_cache, &dz, &mut ag_new, &mut attn_scratch, &mut dx);
            prop_assert_eq!(&dx, &dx_ref);
            prop_assert_eq!(&ag_new.wq.dw, &ag_ref.wq.dw);
            prop_assert_eq!(&ag_new.wv.dw, &ag_ref.wv.dw);
        }
    }

    /// The buffer-out backward helpers are bit-identical to their
    /// allocating counterparts on dirty scratch buffers.
    #[test]
    fn into_backwards_are_bit_identical(
        rows in 1usize..5,
        cols in 1usize..24,
        seed in 0u64..500,
    ) {
        use create_nn::activation::{
            relu_backward, relu_backward_into, silu_backward, silu_backward_into,
            softmax_backward, softmax_backward_into,
        };
        use create_nn::norm::{
            layernorm_backward, layernorm_backward_into, layernorm_with_stats,
            layernorm_with_stats_into, rmsnorm_backward, rmsnorm_backward_into,
            rmsnorm_with_stats, rmsnorm_with_stats_into,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Matrix::random_uniform(rows, cols, 3.0, &mut rng);
        let dy = Matrix::random_uniform(rows, cols, 2.0, &mut rng);
        let mut out = Matrix::random_uniform(3, 2, 1.0, &mut rng); // dirty
        relu_backward_into(&x, &dy, &mut out);
        prop_assert_eq!(&out, &relu_backward(&x, &dy));
        silu_backward_into(&x, &dy, &mut out);
        prop_assert_eq!(&out, &silu_backward(&x, &dy));
        let p = softmax_rows(&x);
        softmax_backward_into(&p, &dy, &mut out);
        prop_assert_eq!(&out, &softmax_backward(&p, &dy));
        let (y, stats) = rmsnorm_with_stats(&x);
        let mut y2 = Matrix::random_uniform(1, 4, 1.0, &mut rng);
        let mut stats2 = Default::default();
        rmsnorm_with_stats_into(&x, &mut y2, &mut stats2);
        prop_assert_eq!(&y2, &y);
        prop_assert_eq!(&stats2, &stats);
        rmsnorm_backward_into(&y, &stats, &dy, &mut out);
        prop_assert_eq!(&out, &rmsnorm_backward(&y, &stats, &dy));
        let (y, stats) = layernorm_with_stats(&x);
        layernorm_with_stats_into(&x, &mut y2, &mut stats2);
        prop_assert_eq!(&y2, &y);
        prop_assert_eq!(&stats2, &stats);
        layernorm_backward_into(&y, &stats, &dy, &mut out);
        prop_assert_eq!(&out, &layernorm_backward(&y, &stats, &dy));
    }

    /// The scratch-threaded quantized attention and block forwards are
    /// bit-identical to the allocating forwards, including when one
    /// scratch instance is reused across differently-shaped calls.
    #[test]
    fn quant_forward_into_matches_forward(seed in 0u64..60) {
        use create_accel::Accelerator;
        use create_nn::attention::{Mha, MhaScratch, QuantMha};
        use create_nn::block::{
            ControllerBlock, QuantControllerBlock, QuantControllerBlockScratch,
        };
        use create_tensor::Precision;
        let mut rng = StdRng::seed_from_u64(seed);
        let d = 16usize;
        let mha = Mha::new(d, 4, seed % 2 == 0, &mut rng);
        let x = Matrix::random_uniform(4, d, 1.0, &mut rng);
        let (y_float, _) = mha.forward(&x);
        let cal = |m: &Matrix| m.max_abs();
        // Generous fixed output bounds: parity is what is under test, so
        // exact calibration quality is irrelevant.
        let q = QuantMha::from_calibrated(
            &mha,
            (cal(&x), 5.0),
            (cal(&x), 5.0),
            (cal(&x), 5.0),
            (5.0, cal(&y_float).max(1.0) * 2.0),
            1.25,
            Precision::Int8,
        );
        let mut accel_a = Accelerator::ideal(seed);
        let mut accel_b = Accelerator::ideal(seed);
        let mut scratch = MhaScratch::default();
        let mut out = Matrix::random_uniform(1, 2, 1.0, &mut rng); // dirty
        for t in 1..4 {
            // Growing sequence lengths exercise scratch reshaping.
            let xt = x.rows_range(0, t);
            let ya = q.forward(&mut accel_a, &xt, create_accel::Unit::Controller, 0);
            q.forward_into(
                &mut accel_b,
                &xt,
                create_accel::Unit::Controller,
                0,
                &mut scratch,
                &mut out,
            );
            prop_assert_eq!(&ya, &out);
        }
        prop_assert_eq!(accel_a.macs(), accel_b.macs());

        let block = ControllerBlock::new(d, 2 * d, 4, &mut rng);
        let (zf, _) = block.forward(&x);
        let n1 = create_nn::norm::layernorm(&x);
        let qb = QuantControllerBlock::from_calibrated(
            &block,
            (n1.max_abs(), 5.0),
            (n1.max_abs(), 5.0),
            (n1.max_abs(), 5.0),
            (5.0, 5.0),
            (5.0, zf.max_abs() * 2.0),
            (5.0, zf.max_abs() * 2.0),
            1.25,
            Precision::Int8,
        );
        let mut bs = QuantControllerBlockScratch::default();
        for t in [4usize, 2, 4] {
            let xt = x.rows_range(0, t);
            let za = qb.forward(&mut accel_a, &xt, 0, None);
            qb.forward_into(&mut accel_b, &xt, 0, None, &mut bs, &mut out);
            prop_assert_eq!(&za, &out);
        }
        prop_assert_eq!(accel_a.macs(), accel_b.macs());
    }

    /// AdamW with zero gradient and zero weight decay leaves parameters
    /// unchanged.
    #[test]
    fn adamw_fixed_point(params in prop::collection::vec(-5.0f32..5.0, 1..32)) {
        let cfg = AdamWConfig {
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        let mut p = params.clone();
        let mut state = AdamState::new(p.len());
        let zeros = vec![0.0f32; p.len()];
        for t in 1..=5 {
            state.step(&mut p, &zeros, &cfg, t);
        }
        for (a, b) in p.iter().zip(&params) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
