//! Property-based tests for the NN layer invariants.

use create_nn::activation::{entropy, relu, silu, softmax_rows};
use create_nn::norm::{layernorm, rmsnorm};
use create_nn::optim::{AdamState, AdamWConfig};
use create_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Softmax rows are probability vectors for arbitrary logits.
    #[test]
    fn softmax_rows_are_distributions(values in prop::collection::vec(-30.0f32..30.0, 2..48)) {
        let m = Matrix::from_vec(1, values.len(), values);
        let p = softmax_rows(&m);
        let sum: f32 = p.row(0).iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.row(0).iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    /// Softmax is invariant to per-row shifts.
    #[test]
    fn softmax_shift_invariance(values in prop::collection::vec(-10.0f32..10.0, 2..16), shift in -50.0f32..50.0) {
        let a = Matrix::from_vec(1, values.len(), values.clone());
        let b = a.map(|v| v + shift);
        prop_assert!(softmax_rows(&a).max_abs_diff(&softmax_rows(&b)) < 1e-4);
    }

    /// RMSNorm output always has unit RMS; LayerNorm output has zero mean
    /// and unit variance (up to eps effects on tiny-variance rows).
    #[test]
    fn norms_standardize_rows(values in prop::collection::vec(-20.0f32..20.0, 4..64)) {
        let spread = values.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
            - values.iter().cloned().fold(f32::INFINITY, f32::min);
        prop_assume!(spread > 0.1);
        let d = values.len();
        let m = Matrix::from_vec(1, d, values);
        let r = rmsnorm(&m);
        let ms: f32 = r.row(0).iter().map(|v| v * v).sum::<f32>() / d as f32;
        prop_assert!((ms - 1.0).abs() < 1e-2);
        let l = layernorm(&m);
        let mean: f32 = l.row(0).iter().sum::<f32>() / d as f32;
        prop_assert!(mean.abs() < 1e-3);
    }

    /// RMSNorm is positively scale-invariant: rmsnorm(c·x) == rmsnorm(x).
    #[test]
    fn rmsnorm_scale_invariance(values in prop::collection::vec(-5.0f32..5.0, 4..32), c in 0.5f32..20.0) {
        let norm: f32 = values.iter().map(|v| v * v).sum::<f32>();
        prop_assume!(norm > 0.5);
        let m = Matrix::from_vec(1, values.len(), values);
        let scaled = m.scale(c);
        prop_assert!(rmsnorm(&m).max_abs_diff(&rmsnorm(&scaled)) < 1e-3);
    }

    /// ReLU is monotone and non-negative; SiLU is bounded below by its
    /// global minimum (~-0.2785) and monotone on the positive axis.
    #[test]
    fn activation_shape_properties(a in -10.0f32..10.0, b in -10.0f32..10.0) {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let m = Matrix::from_vec(1, 2, vec![lo, hi]);
        let r = relu(&m);
        prop_assert!(r.get(0, 0) <= r.get(0, 1));
        prop_assert!(r.get(0, 0) >= 0.0);
        let s = silu(&m);
        prop_assert!(s.get(0, 0) >= -0.2786 && s.get(0, 1) >= -0.2786);
        if lo >= 0.0 {
            prop_assert!(s.get(0, 0) <= s.get(0, 1) + 1e-6);
        }
    }

    /// Entropy is maximal for the uniform distribution.
    #[test]
    fn uniform_maximizes_entropy(n in 2usize..16, tilt in 0.01f32..5.0) {
        let uniform = vec![1.0 / n as f32; n];
        let mut tilted = uniform.clone();
        tilted[0] += tilt;
        let z: f32 = tilted.iter().sum();
        for v in tilted.iter_mut() {
            *v /= z;
        }
        prop_assert!(entropy(&tilted) <= entropy(&uniform) + 1e-5);
    }

    /// AdamW with zero gradient and zero weight decay leaves parameters
    /// unchanged.
    #[test]
    fn adamw_fixed_point(params in prop::collection::vec(-5.0f32..5.0, 1..32)) {
        let cfg = AdamWConfig {
            weight_decay: 0.0,
            ..AdamWConfig::default()
        };
        let mut p = params.clone();
        let mut state = AdamState::new(p.len());
        let zeros = vec![0.0f32; p.len()];
        for t in 1..=5 {
            state.step(&mut p, &zeros, &cfg, t);
        }
        for (a, b) in p.iter().zip(&params) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
