//! Bit-parity against the **pre-refactor kernels**, kept here verbatim.
//!
//! The PR that introduced the scratch/`_into` training paths also
//! rewrote the allocating forms to delegate to them — so a test that
//! compares `forward` with `forward_cached` only checks the new code
//! against itself. This suite closes that loop: every rewritten kernel
//! (activation/norm backwards, `Linear`, `Mha`, the MLPs and both block
//! types) is compared against a *local verbatim copy of the pre-refactor
//! implementation*. The legacy copies bottom out in `Matrix` ops whose
//! own pre-refactor loops live on verbatim as `ScalarF32Backend` (and
//! the backend proptests pin `blocked == scalar`), so the chain of
//! custody back to the original bits is complete.

use create_nn::activation::{
    relu_backward, sigmoid, silu_backward, softmax_backward, softmax_rows,
};
use create_nn::block::{ControllerBlock, PlannerBlock, ReluMlp, SwiGlu};
use create_nn::linear::{Linear, LinearGrads};
use create_nn::norm::{
    layernorm_backward, layernorm_with_stats, rmsnorm_backward, rmsnorm_with_stats, NormStats,
};
use create_nn::Mha;
use create_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Verbatim pre-refactor implementations (do not "modernize" these — their
// value is being frozen history).
// ---------------------------------------------------------------------------

fn legacy_relu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(x.shape(), dy.shape(), "relu backward shape mismatch");
    Matrix::from_fn(x.rows(), x.cols(), |r, c| {
        if x.get(r, c) > 0.0 {
            dy.get(r, c)
        } else {
            0.0
        }
    })
}

fn legacy_silu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(x.shape(), dy.shape(), "silu backward shape mismatch");
    Matrix::from_fn(x.rows(), x.cols(), |r, c| {
        let v = x.get(r, c);
        let s = sigmoid(v);
        dy.get(r, c) * s * (1.0 + v * (1.0 - s))
    })
}

fn legacy_softmax_backward(p: &Matrix, dy: &Matrix) -> Matrix {
    assert_eq!(p.shape(), dy.shape(), "softmax backward shape mismatch");
    let mut out = Matrix::zeros(p.rows(), p.cols());
    for r in 0..p.rows() {
        let dot: f32 = p.row(r).iter().zip(dy.row(r)).map(|(a, b)| a * b).sum();
        for c in 0..p.cols() {
            out.set(r, c, p.get(r, c) * (dy.get(r, c) - dot));
        }
    }
    out
}

const EPS: f32 = 1e-5;

fn legacy_rmsnorm_with_stats(x: &Matrix) -> (Matrix, NormStats) {
    let d = x.cols() as f32;
    let mut out = x.clone();
    let mut denom = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let ms: f32 = row.iter().map(|v| v * v).sum::<f32>() / d;
        let rms = (ms + EPS).sqrt();
        for v in row.iter_mut() {
            *v /= rms;
        }
        denom.push(rms);
    }
    let stats = NormStats {
        mean: vec![0.0; x.rows()],
        denom,
    };
    (out, stats)
}

fn legacy_rmsnorm_backward(y: &Matrix, stats: &NormStats, dy: &Matrix) -> Matrix {
    assert_eq!(y.shape(), dy.shape(), "rmsnorm backward shape mismatch");
    let d = y.cols() as f32;
    Matrix::from_fn(y.rows(), y.cols(), |r, c| {
        let dot: f32 = y.row(r).iter().zip(dy.row(r)).map(|(a, b)| a * b).sum();
        (dy.get(r, c) - y.get(r, c) * dot / d) / stats.denom[r]
    })
}

fn legacy_layernorm_with_stats(x: &Matrix) -> (Matrix, NormStats) {
    let d = x.cols() as f32;
    let mut out = x.clone();
    let mut means = Vec::with_capacity(x.rows());
    let mut denom = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = out.row_mut(r);
        let mu: f32 = row.iter().sum::<f32>() / d;
        let var: f32 = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / d;
        let sd = (var + EPS).sqrt();
        for v in row.iter_mut() {
            *v = (*v - mu) / sd;
        }
        means.push(mu);
        denom.push(sd);
    }
    (out, NormStats { mean: means, denom })
}

fn legacy_layernorm_backward(y: &Matrix, stats: &NormStats, dy: &Matrix) -> Matrix {
    assert_eq!(y.shape(), dy.shape(), "layernorm backward shape mismatch");
    let d = y.cols() as f32;
    Matrix::from_fn(y.rows(), y.cols(), |r, c| {
        let mean_dy: f32 = dy.row(r).iter().sum::<f32>() / d;
        let dot: f32 = y
            .row(r)
            .iter()
            .zip(dy.row(r))
            .map(|(a, b)| a * b)
            .sum::<f32>()
            / d;
        (dy.get(r, c) - mean_dy - y.get(r, c) * dot) / stats.denom[r]
    })
}

fn legacy_linear_forward(l: &Linear, x: &Matrix) -> Matrix {
    let mut y = x.matmul(&l.w);
    if let Some(b) = &l.b {
        for r in 0..y.rows() {
            for (v, add) in y.row_mut(r).iter_mut().zip(b) {
                *v += add;
            }
        }
    }
    y
}

fn legacy_linear_backward(l: &Linear, x: &Matrix, dy: &Matrix, grads: &mut LinearGrads) -> Matrix {
    grads.dw.add_assign(&x.matmul_tn(dy));
    if let Some(db) = &mut grads.db {
        for r in 0..dy.rows() {
            for (g, v) in db.iter_mut().zip(dy.row(r)) {
                *g += v;
            }
        }
    }
    dy.matmul_nt(&l.w)
}

fn head_slice(m: &Matrix, h: usize, dh: usize) -> Matrix {
    Matrix::from_fn(m.rows(), dh, |r, c| m.get(r, h * dh + c))
}

fn head_unslice(m: &mut Matrix, part: &Matrix, h: usize, dh: usize) {
    for r in 0..part.rows() {
        for c in 0..part.cols() {
            let cur = m.get(r, h * dh + c);
            m.set(r, h * dh + c, cur + part.get(r, c));
        }
    }
}

fn causal_mask(scores: &mut Matrix) {
    for r in 0..scores.rows() {
        for c in (r + 1)..scores.cols() {
            scores.set(r, c, f32::NEG_INFINITY);
        }
    }
}

struct LegacyMhaCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    probs: Vec<Matrix>,
    context: Matrix,
}

fn legacy_mha_forward(mha: &Mha, x: &Matrix) -> (Matrix, LegacyMhaCache) {
    let d = mha.width();
    let dh = d / mha.heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let q = legacy_linear_forward(&mha.wq, x);
    let k = legacy_linear_forward(&mha.wk, x);
    let v = legacy_linear_forward(&mha.wv, x);
    let mut context = Matrix::zeros(x.rows(), d);
    let mut probs = Vec::with_capacity(mha.heads);
    for h in 0..mha.heads {
        let qh = head_slice(&q, h, dh);
        let kh = head_slice(&k, h, dh);
        let vh = head_slice(&v, h, dh);
        let mut scores = qh.matmul_nt(&kh).scale(scale);
        if mha.causal {
            causal_mask(&mut scores);
        }
        let p = softmax_rows(&scores);
        let ch = p.matmul(&vh);
        head_unslice(&mut context, &ch, h, dh);
        probs.push(p);
    }
    let y = legacy_linear_forward(&mha.wo, &context);
    let cache = LegacyMhaCache {
        x: x.clone(),
        q,
        k,
        v,
        probs,
        context,
    };
    (y, cache)
}

/// Legacy grads mirror: `(wq, wk, wv, wo)` as plain `LinearGrads`.
type LegacyMhaGrads = [LinearGrads; 4];

fn legacy_mha_backward(
    mha: &Mha,
    cache: &LegacyMhaCache,
    dy: &Matrix,
    grads: &mut LegacyMhaGrads,
) -> Matrix {
    let d = mha.width();
    let dh = d / mha.heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let dcontext = legacy_linear_backward(&mha.wo, &cache.context, dy, &mut grads[3]);
    let mut dq = Matrix::zeros(cache.x.rows(), d);
    let mut dk = Matrix::zeros(cache.x.rows(), d);
    let mut dv = Matrix::zeros(cache.x.rows(), d);
    for h in 0..mha.heads {
        let qh = head_slice(&cache.q, h, dh);
        let kh = head_slice(&cache.k, h, dh);
        let vh = head_slice(&cache.v, h, dh);
        let dch = head_slice(&dcontext, h, dh);
        let p = &cache.probs[h];
        let dp = dch.matmul_nt(&vh);
        let dvh = p.matmul_tn(&dch);
        let dscores = legacy_softmax_backward(p, &dp);
        let dqh = dscores.matmul(&kh).scale(scale);
        let dkh = dscores.matmul_tn(&qh).scale(scale);
        head_unslice(&mut dq, &dqh, h, dh);
        head_unslice(&mut dk, &dkh, h, dh);
        head_unslice(&mut dv, &dvh, h, dh);
    }
    let dx_q = legacy_linear_backward(&mha.wq, &cache.x, &dq, &mut grads[0]);
    let dx_k = legacy_linear_backward(&mha.wk, &cache.x, &dk, &mut grads[1]);
    let dx_v = legacy_linear_backward(&mha.wv, &cache.x, &dv, &mut grads[2]);
    dx_q.add(&dx_k).add(&dx_v)
}

struct LegacySwiGluCache {
    x: Matrix,
    gate: Matrix,
    up: Matrix,
    act: Matrix,
    prod: Matrix,
}

fn legacy_silu(x: &Matrix) -> Matrix {
    x.map(|v| v * sigmoid(v))
}

fn legacy_relu(x: &Matrix) -> Matrix {
    x.map(|v| v.max(0.0))
}

fn legacy_swiglu_forward(mlp: &SwiGlu, x: &Matrix) -> (Matrix, LegacySwiGluCache) {
    let gate = legacy_linear_forward(&mlp.wgate, x);
    let up = legacy_linear_forward(&mlp.wup, x);
    let act = legacy_silu(&gate);
    let prod = Matrix::from_fn(act.rows(), act.cols(), |r, c| act.get(r, c) * up.get(r, c));
    let y = legacy_linear_forward(&mlp.wdown, &prod);
    (
        y,
        LegacySwiGluCache {
            x: x.clone(),
            gate,
            up,
            act,
            prod,
        },
    )
}

/// Legacy grads mirror: `(wgate, wup, wdown)`.
type LegacySwiGluGrads = [LinearGrads; 3];

fn legacy_swiglu_backward(
    mlp: &SwiGlu,
    cache: &LegacySwiGluCache,
    dy: &Matrix,
    grads: &mut LegacySwiGluGrads,
) -> Matrix {
    let dprod = legacy_linear_backward(&mlp.wdown, &cache.prod, dy, &mut grads[2]);
    let dact = Matrix::from_fn(dprod.rows(), dprod.cols(), |r, c| {
        dprod.get(r, c) * cache.up.get(r, c)
    });
    let dup = Matrix::from_fn(dprod.rows(), dprod.cols(), |r, c| {
        dprod.get(r, c) * cache.act.get(r, c)
    });
    let dgate = legacy_silu_backward(&cache.gate, &dact);
    let dx_g = legacy_linear_backward(&mlp.wgate, &cache.x, &dgate, &mut grads[0]);
    let dx_u = legacy_linear_backward(&mlp.wup, &cache.x, &dup, &mut grads[1]);
    dx_g.add(&dx_u)
}

struct LegacyReluMlpCache {
    x: Matrix,
    pre: Matrix,
    hidden: Matrix,
}

fn legacy_relumlp_forward(mlp: &ReluMlp, x: &Matrix) -> (Matrix, LegacyReluMlpCache) {
    let pre = legacy_linear_forward(&mlp.fc1, x);
    let hidden = legacy_relu(&pre);
    let y = legacy_linear_forward(&mlp.fc2, &hidden);
    (
        y,
        LegacyReluMlpCache {
            x: x.clone(),
            pre,
            hidden,
        },
    )
}

/// Legacy grads mirror: `(fc1, fc2)`.
type LegacyReluMlpGrads = [LinearGrads; 2];

fn legacy_relumlp_backward(
    mlp: &ReluMlp,
    cache: &LegacyReluMlpCache,
    dy: &Matrix,
    grads: &mut LegacyReluMlpGrads,
) -> Matrix {
    let dhidden = legacy_linear_backward(&mlp.fc2, &cache.hidden, dy, &mut grads[1]);
    let dpre = legacy_relu_backward(&cache.pre, &dhidden);
    legacy_linear_backward(&mlp.fc1, &cache.x, &dpre, &mut grads[0])
}

struct LegacyPlannerBlockCache {
    n1: Matrix,
    n1_stats: NormStats,
    attn: LegacyMhaCache,
    n2: Matrix,
    n2_stats: NormStats,
    mlp: LegacySwiGluCache,
}

fn legacy_planner_forward(block: &PlannerBlock, x: &Matrix) -> (Matrix, LegacyPlannerBlockCache) {
    let (n1, n1_stats) = legacy_rmsnorm_with_stats(x);
    let (a, attn_cache) = legacy_mha_forward(&block.attn, &n1);
    let y = x.add(&a);
    let (n2, n2_stats) = legacy_rmsnorm_with_stats(&y);
    let (m, mlp_cache) = legacy_swiglu_forward(&block.mlp, &n2);
    let z = y.add(&m);
    (
        z,
        LegacyPlannerBlockCache {
            n1,
            n1_stats,
            attn: attn_cache,
            n2,
            n2_stats,
            mlp: mlp_cache,
        },
    )
}

fn legacy_planner_backward(
    block: &PlannerBlock,
    cache: &LegacyPlannerBlockCache,
    dz: &Matrix,
    attn_grads: &mut LegacyMhaGrads,
    mlp_grads: &mut LegacySwiGluGrads,
) -> Matrix {
    let dn2 = legacy_swiglu_backward(&block.mlp, &cache.mlp, dz, mlp_grads);
    let mut dy = dz.add(&legacy_rmsnorm_backward(&cache.n2, &cache.n2_stats, &dn2));
    let dn1 = legacy_mha_backward(&block.attn, &cache.attn, &dy, attn_grads);
    let dx_norm = legacy_rmsnorm_backward(&cache.n1, &cache.n1_stats, &dn1);
    dy.add_assign(&dx_norm);
    dy
}

struct LegacyControllerBlockCache {
    n1: Matrix,
    n1_stats: NormStats,
    attn: LegacyMhaCache,
    n2: Matrix,
    n2_stats: NormStats,
    mlp: LegacyReluMlpCache,
}

fn legacy_controller_forward(
    block: &ControllerBlock,
    x: &Matrix,
) -> (Matrix, LegacyControllerBlockCache) {
    let (n1, n1_stats) = legacy_layernorm_with_stats(x);
    let (a, attn_cache) = legacy_mha_forward(&block.attn, &n1);
    let y = x.add(&a);
    let (n2, n2_stats) = legacy_layernorm_with_stats(&y);
    let (m, mlp_cache) = legacy_relumlp_forward(&block.mlp, &n2);
    let z = y.add(&m);
    (
        z,
        LegacyControllerBlockCache {
            n1,
            n1_stats,
            attn: attn_cache,
            n2,
            n2_stats,
            mlp: mlp_cache,
        },
    )
}

fn legacy_controller_backward(
    block: &ControllerBlock,
    cache: &LegacyControllerBlockCache,
    dz: &Matrix,
    attn_grads: &mut LegacyMhaGrads,
    mlp_grads: &mut LegacyReluMlpGrads,
) -> Matrix {
    let dn2 = legacy_relumlp_backward(&block.mlp, &cache.mlp, dz, mlp_grads);
    let mut dy = dz.add(&legacy_layernorm_backward(&cache.n2, &cache.n2_stats, &dn2));
    let dn1 = legacy_mha_backward(&block.attn, &cache.attn, &dy, attn_grads);
    let dx_norm = legacy_layernorm_backward(&cache.n1, &cache.n1_stats, &dn1);
    dy.add_assign(&dx_norm);
    dy
}

// ---------------------------------------------------------------------------
// Parity tests
// ---------------------------------------------------------------------------

fn random(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    // Salt with exact zeros to exercise the zero-skip paths.
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.random_range(0.0f32..1.0) < 0.2 {
            0.0
        } else {
            rng.random_range(-1.5f32..1.5)
        }
    })
}

fn zero_grads(l: &Linear) -> LinearGrads {
    LinearGrads {
        dw: Matrix::zeros(l.w.rows(), l.w.cols()),
        db: l.b.as_ref().map(|b| vec![0.0; b.len()]),
    }
}

#[test]
fn elementwise_kernels_match_legacy_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..20 {
        let rows = rng.random_range(1usize..6);
        let cols = rng.random_range(1usize..40);
        let x = random(rows, cols, &mut rng);
        let dy = random(rows, cols, &mut rng);
        assert_eq!(relu_backward(&x, &dy), legacy_relu_backward(&x, &dy));
        assert_eq!(silu_backward(&x, &dy), legacy_silu_backward(&x, &dy));
        let p = softmax_rows(&x);
        assert_eq!(softmax_backward(&p, &dy), legacy_softmax_backward(&p, &dy));
        let (y_new, s_new) = rmsnorm_with_stats(&x);
        let (y_old, s_old) = legacy_rmsnorm_with_stats(&x);
        assert_eq!(y_new, y_old);
        assert_eq!(s_new, s_old);
        assert_eq!(
            rmsnorm_backward(&y_new, &s_new, &dy),
            legacy_rmsnorm_backward(&y_old, &s_old, &dy)
        );
        let (y_new, s_new) = layernorm_with_stats(&x);
        let (y_old, s_old) = legacy_layernorm_with_stats(&x);
        assert_eq!(y_new, y_old);
        assert_eq!(s_new, s_old);
        assert_eq!(
            layernorm_backward(&y_new, &s_new, &dy),
            legacy_layernorm_backward(&y_old, &s_old, &dy)
        );
    }
}

#[test]
fn linear_matches_legacy_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(32);
    for bias in [false, true] {
        let l = Linear::new(6, 4, bias, &mut rng);
        let mut g_new = l.zero_grads();
        let mut g_old = zero_grads(&l);
        for _ in 0..4 {
            let x = random(3, 6, &mut rng);
            let dy = random(3, 4, &mut rng);
            assert_eq!(l.forward(&x), legacy_linear_forward(&l, &x));
            let dx_new = l.backward(&x, &dy, &mut g_new);
            let dx_old = legacy_linear_backward(&l, &x, &dy, &mut g_old);
            assert_eq!(dx_new, dx_old);
            assert_eq!(g_new.dw, g_old.dw);
            assert_eq!(g_new.db, g_old.db);
        }
    }
}

#[test]
fn attention_and_blocks_match_legacy_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(33);
    let mha = Mha::new(8, 2, true, &mut rng);
    let planner = PlannerBlock::new(8, 16, 2, &mut rng);
    let controller = ControllerBlock::new(8, 16, 2, &mut rng);

    let mut mha_new = mha.zero_grads();
    let mut mha_old: LegacyMhaGrads = [
        zero_grads(&mha.wq),
        zero_grads(&mha.wk),
        zero_grads(&mha.wv),
        zero_grads(&mha.wo),
    ];
    let mut p_new = planner.zero_grads();
    let mut p_attn_old: LegacyMhaGrads = [
        zero_grads(&planner.attn.wq),
        zero_grads(&planner.attn.wk),
        zero_grads(&planner.attn.wv),
        zero_grads(&planner.attn.wo),
    ];
    let mut p_mlp_old: LegacySwiGluGrads = [
        zero_grads(&planner.mlp.wgate),
        zero_grads(&planner.mlp.wup),
        zero_grads(&planner.mlp.wdown),
    ];
    let mut c_new = controller.zero_grads();
    let mut c_attn_old: LegacyMhaGrads = [
        zero_grads(&controller.attn.wq),
        zero_grads(&controller.attn.wk),
        zero_grads(&controller.attn.wv),
        zero_grads(&controller.attn.wo),
    ];
    let mut c_mlp_old: LegacyReluMlpGrads = [
        zero_grads(&controller.mlp.fc1),
        zero_grads(&controller.mlp.fc2),
    ];

    for rows in [3usize, 1, 5] {
        let x = random(rows, 8, &mut rng);
        let dz = random(rows, 8, &mut rng);

        let (y_new, cache_new) = mha.forward(&x);
        let (y_old, cache_old) = legacy_mha_forward(&mha, &x);
        assert_eq!(y_new, y_old);
        let dx_new = mha.backward(&cache_new, &dz, &mut mha_new);
        let dx_old = legacy_mha_backward(&mha, &cache_old, &dz, &mut mha_old);
        assert_eq!(dx_new, dx_old);
        assert_eq!(mha_new.wq.dw, mha_old[0].dw);
        assert_eq!(mha_new.wk.dw, mha_old[1].dw);
        assert_eq!(mha_new.wv.dw, mha_old[2].dw);
        assert_eq!(mha_new.wo.dw, mha_old[3].dw);

        let (z_new, cache_new) = planner.forward(&x);
        let (z_old, cache_old) = legacy_planner_forward(&planner, &x);
        assert_eq!(z_new, z_old);
        let dx_new = planner.backward(&cache_new, &dz, &mut p_new);
        let dx_old =
            legacy_planner_backward(&planner, &cache_old, &dz, &mut p_attn_old, &mut p_mlp_old);
        assert_eq!(dx_new, dx_old);
        assert_eq!(p_new.attn.wq.dw, p_attn_old[0].dw);
        assert_eq!(p_new.attn.wo.dw, p_attn_old[3].dw);
        assert_eq!(p_new.mlp.wgate.dw, p_mlp_old[0].dw);
        assert_eq!(p_new.mlp.wup.dw, p_mlp_old[1].dw);
        assert_eq!(p_new.mlp.wdown.dw, p_mlp_old[2].dw);

        let (z_new, cache_new) = controller.forward(&x);
        let (z_old, cache_old) = legacy_controller_forward(&controller, &x);
        assert_eq!(z_new, z_old);
        let dx_new = controller.backward(&cache_new, &dz, &mut c_new);
        let dx_old = legacy_controller_backward(
            &controller,
            &cache_old,
            &dz,
            &mut c_attn_old,
            &mut c_mlp_old,
        );
        assert_eq!(dx_new, dx_old);
        assert_eq!(c_new.attn.wv.dw, c_attn_old[2].dw);
        assert_eq!(c_new.mlp.fc1.dw, c_mlp_old[0].dw);
        assert_eq!(c_new.mlp.fc1.db, c_mlp_old[0].db);
        assert_eq!(c_new.mlp.fc2.dw, c_mlp_old[1].dw);
    }
}
