//! Diffs freshly written `results/BENCH_*.json` files against the
//! committed baselines in `results/baseline/`, prints a per-shape
//! speedup table, and exits non-zero when any gated metric regressed by
//! more than the tolerance (`CREATE_BENCH_TOLERANCE`, default `0.20` =
//! 20%).
//!
//! Records are matched by their configuration identity (every string
//! field plus every integer field — bench name, shape, backend, thread
//! count, …); the gated metric per record is wall-clock
//! (`ns_per_iter`/`s_per_epoch`, lower is better) or throughput
//! (`trials_per_s`/`missions_per_s`, higher is better). Fresh records
//! without a baseline
//! counterpart are reported as `new` and never gate; a missing fresh
//! file is skipped (that bench simply did not run). A missing or
//! unparseable *individual* file — fresh or baseline — warns and skips
//! that comparison rather than aborting the whole report: one corrupt
//! artifact must not mask regressions visible in the others. The
//! report exits non-zero only on a true regression or when the entire
//! comparison set ends up empty (nothing compared anywhere — e.g. no
//! `results/baseline/` directory; commit one with
//! `cp results/BENCH_*.json results/baseline/`).
//!
//! Two intra-run gates ride along, comparing fresh records against each
//! other (so machine speed cancels out): the `auto` dispatch backend
//! must match or beat the best single backend on every shape group, and
//! the persistent training pool must match or beat spawn-per-chunk at
//! the widest measured worker count.
//!
//! The sweep fabric's merged trajectory rides along: when the CI sweep
//! job stages its `merged.json` next to the `BENCH_*.json` files, every
//! grid point's `state_digest` must match `results/baseline/merged.json`
//! **bit-exactly** — the sweep is a determinism harness, so its gate is
//! equality, not a tolerance band.
//!
//! ```text
//! cargo run -p create-bench --bin bench_report
//! ```

use create_bench::{parse_bench_json, primary_metric, record_key, BenchValue, FlatRecord};
use create_core::prelude::results_dir;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

fn field_str<'a>(record: &'a FlatRecord, key: &str) -> Option<&'a str> {
    record.iter().find_map(|(k, v)| match v {
        BenchValue::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

/// [`record_key`] with the named string field removed — the grouping key
/// for "same configuration, different backend/mode" comparisons.
fn key_without(record: &FlatRecord, field: &str) -> String {
    record_key(record)
        .split(';')
        .filter(|part| !part.is_empty() && !part.starts_with(&format!("{field}=")))
        .map(|part| format!("{part};"))
        .collect()
}

/// Gate: the `auto` dispatch backend must match or beat the best single
/// concrete backend on **every** measured shape (within tolerance) —
/// otherwise the static dispatch table routed a bucket to the wrong
/// kernel. Compares fresh records only (same run, same machine, same
/// noise floor), grouped by configuration-minus-backend.
fn gate_auto_vs_best(file: &str, fresh: &[FlatRecord], tolerance: f64) -> usize {
    let mut groups: BTreeMap<String, Vec<(&str, f64, bool)>> = BTreeMap::new();
    for record in fresh {
        let Some(backend) = field_str(record, "backend") else {
            continue;
        };
        let Some((_, value, higher_is_better)) = primary_metric(record) else {
            continue;
        };
        if !value.is_finite() || value <= 0.0 {
            continue;
        }
        groups
            .entry(key_without(record, "backend"))
            .or_default()
            .push((backend, value, higher_is_better));
    }
    let mut violations = 0usize;
    let mut compared = 0usize;
    for (key, entries) in &groups {
        let Some(&(_, auto, higher_is_better)) = entries.iter().find(|(b, _, _)| *b == "auto")
        else {
            continue;
        };
        let concrete: Vec<f64> = entries
            .iter()
            .filter(|(b, _, _)| *b != "auto")
            .map(|&(_, v, _)| v)
            .collect();
        if concrete.is_empty() {
            continue;
        }
        compared += 1;
        let (best, ok) = if higher_is_better {
            let best = concrete.iter().cloned().fold(f64::MIN, f64::max);
            (best, auto >= best * (1.0 - tolerance))
        } else {
            let best = concrete.iter().cloned().fold(f64::MAX, f64::min);
            (best, auto <= best * (1.0 + tolerance))
        };
        if !ok {
            violations += 1;
            eprintln!(
                "  AUTO-DISPATCH MISS  {key}  auto {auto:.3} vs best single backend {best:.3}"
            );
        }
    }
    println!(
        "[bench-report] {file}: auto matched/beat the best single backend on \
         {}/{compared} shape groups",
        compared - violations
    );
    violations
}

/// Gate: the persistent worker pool must train at least as fast as the
/// old spawn-per-chunk fan-out at the widest measured worker count
/// (within tolerance) — the whole point of parking workers on a condvar.
fn gate_pool_vs_spawn(file: &str, fresh: &[FlatRecord], tolerance: f64) -> usize {
    let mut groups: BTreeMap<String, (Option<f64>, Option<f64>)> = BTreeMap::new();
    for record in fresh {
        let Some(mode) = field_str(record, "mode") else {
            continue;
        };
        let Some((_, value, _)) = primary_metric(record) else {
            continue;
        };
        if !value.is_finite() || value <= 0.0 {
            continue;
        }
        let slot = groups.entry(key_without(record, "mode")).or_default();
        match mode {
            "pool" => slot.0 = Some(value),
            "spawn" => slot.1 = Some(value),
            _ => {}
        }
    }
    // Gate only the widest worker count: at 1 worker both run inline and
    // at low counts the two are within noise of each other by design.
    let widest = groups
        .keys()
        .filter_map(|k| {
            k.split(';').find_map(|p| {
                p.strip_prefix("threads=")
                    .and_then(|t| t.parse::<u64>().ok())
            })
        })
        .max();
    let mut violations = 0usize;
    let mut compared = 0usize;
    for (key, (pool, spawn)) in &groups {
        let (Some(pool), Some(spawn)) = (pool, spawn) else {
            continue;
        };
        let threads = key.split(';').find_map(|p| {
            p.strip_prefix("threads=")
                .and_then(|t| t.parse::<u64>().ok())
        });
        if threads != widest {
            continue;
        }
        compared += 1;
        // s_per_epoch: lower is better.
        if *pool > *spawn * (1.0 + tolerance) {
            violations += 1;
            eprintln!(
                "  POOL SLOWER THAN SPAWN  {key}  pool {pool:.4} s/epoch vs spawn {spawn:.4}"
            );
        }
    }
    println!(
        "[bench-report] {file}: persistent pool >= spawn-per-chunk on \
         {}/{compared} widest-fan-out train runs",
        compared - violations
    );
    violations
}

/// Gate: across the fault-serving sweep, the adaptive governor must hold
/// static DMR's mission success (within a small absolute slack — the
/// missions it loses while still probing the cheap rungs) while spending
/// **measurably less** energy than always-DMR where protection is not
/// needed — otherwise the governor is either failing its SLO or not
/// actually saving anything. Energy is judged per BER level, because the
/// hot levels dominate any aggregate (a faulty mission meters 20–50× a
/// clean one) while the savings live on the quasi-clean traffic that
/// dominates real deployments: at **every** level adaptive must stay
/// within 10% of DMR (it escalates within a mission or two, so it never
/// pays much more than always-on protection), and on **at least one**
/// level it must spend ≤ 80% of DMR (the clean level, where always-DMR
/// burns redundant executions for nothing). Fresh records only — one run
/// compared against itself, so machine speed cancels out; the values are
/// seed-deterministic, so the thresholds are exact, not noise floors.
fn gate_adaptive_vs_static(file: &str, fresh: &[FlatRecord]) -> usize {
    fn num(record: &FlatRecord, key: &str) -> Option<f64> {
        record.iter().find_map(|(k, v)| match v {
            BenchValue::Num { value, .. } if k == key => Some(*value),
            _ => None,
        })
    }
    // Per level (configuration minus mode): per-mode (successes, avg J).
    let mut levels: BTreeMap<String, BTreeMap<&str, (f64, f64)>> = BTreeMap::new();
    for record in fresh {
        let (Some(mode), Some(rate), Some(avg_j), Some(missions)) = (
            field_str(record, "mode"),
            num(record, "success_rate"),
            num(record, "avg_energy_j"),
            num(record, "missions"),
        ) else {
            continue;
        };
        if !matches!(mode, "adaptive" | "dmr") {
            continue;
        }
        levels
            .entry(key_without(record, "mode"))
            .or_default()
            .insert(mode, (rate * missions, avg_j));
    }
    let mut violations = 0usize;
    let mut compared = 0usize;
    let mut min_ratio = f64::MAX;
    let mut adaptive_ok = 0.0f64;
    let mut dmr_ok = 0.0f64;
    for (key, modes) in &levels {
        let (Some(&(a_ok, a_j)), Some(&(d_ok, d_j))) = (modes.get("adaptive"), modes.get("dmr"))
        else {
            continue;
        };
        compared += 1;
        adaptive_ok += a_ok;
        dmr_ok += d_ok;
        let ratio = a_j / d_j.max(1e-12);
        min_ratio = min_ratio.min(ratio);
        if ratio > 1.10 {
            violations += 1;
            eprintln!(
                "  GOVERNOR OVERSPENDS DMR  {key}  adaptive {a_j:.3} J/mission vs dmr {d_j:.3} \
                 (must stay within 10%)"
            );
        }
    }
    if compared == 0 {
        println!("[bench-report] {file}: no adaptive/dmr level pairs, gate skipped");
        return 0;
    }
    // Slack: two missions — the cost of probing the cheap rung before the
    // first escalation at each hot level.
    let slack = 2.0;
    if adaptive_ok + slack < dmr_ok {
        violations += 1;
        eprintln!(
            "  GOVERNOR MISSES DMR SUCCESS  adaptive {adaptive_ok:.1} vs dmr {dmr_ok:.1} \
             successful missions (slack {slack:.1})"
        );
    }
    if min_ratio > 0.80 {
        violations += 1;
        eprintln!(
            "  GOVERNOR SAVES NO ENERGY  best adaptive/dmr energy ratio {min_ratio:.2} across \
             {compared} levels (some level must be <= 0.80)"
        );
    }
    println!(
        "[bench-report] {file}: adaptive {adaptive_ok:.1}/{dmr_ok:.1} dmr successes, \
         best per-level energy ratio {min_ratio:.2} over {compared} levels"
    );
    violations
}

/// The bench files the report covers (the machine-readable trajectory).
const BENCH_FILES: [&str; 6] = [
    "BENCH_kernels.json",
    "BENCH_fig01.json",
    "BENCH_train.json",
    "BENCH_serve.json",
    "BENCH_serve_faulty.json",
    "BENCH_net.json",
];

fn load(path: &Path) -> Result<Vec<FlatRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_bench_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// The identity of one sweep grid point inside `merged.json`. Built by
/// hand rather than via [`record_key`] because the sweep's `voltage_v`
/// is emitted with a decimal point (so the generic key would drop it)
/// while `state_digest` is a string (so the generic key would *include*
/// it — and digest drift is exactly the regression this comparison
/// exists to flag, not a reason to unmatch the record).
fn sweep_point_key(record: &FlatRecord) -> Option<String> {
    let task = field_str(record, "task")?;
    let voltage = record.iter().find_map(|(k, v)| match v {
        BenchValue::Num { raw, .. } if k == "voltage_v" => Some(raw.as_str()),
        _ => None,
    })?;
    let n = record.iter().find_map(|(k, v)| match v {
        BenchValue::Num { raw, .. } if k == "n" => Some(raw.as_str()),
        _ => None,
    })?;
    Some(format!("task={task};voltage_v={voltage};n={n}"))
}

/// Compares the sweep fabric's merged trajectory (`results/merged.json`,
/// staged there by the CI sweep job) against the committed baseline in
/// `results/baseline/merged.json`, point by point. The gate is the
/// `state_digest` field — the merged accumulator's exact bit state — so
/// any ulp of drift anywhere in the mission/trial/accumulation path
/// fails the report, not just drift large enough to move a rounded
/// average. Returns `(points compared, regressions)`.
fn compare_sweep_trajectory(fresh_dir: &Path, baseline_dir: &Path) -> (usize, usize) {
    let file = "merged.json";
    let fresh_path = fresh_dir.join(file);
    if !fresh_path.is_file() {
        println!("[bench-report] {file}: no fresh sweep trajectory, skipped");
        return (0, 0);
    }
    let baseline_path = baseline_dir.join(file);
    if !baseline_path.is_file() {
        println!("[bench-report] {file}: no committed baseline, skipped");
        return (0, 0);
    }
    let (fresh, baseline) = match (load(&fresh_path), load(&baseline_path)) {
        (Ok(f), Ok(b)) => (f, b),
        (f, b) => {
            for err in [f.err(), b.err()].into_iter().flatten() {
                eprintln!("[bench-report] {err} — skipping this comparison");
            }
            return (0, 0);
        }
    };
    let by_key: BTreeMap<String, &FlatRecord> = baseline
        .iter()
        .filter_map(|r| Some((sweep_point_key(r)?, r)))
        .collect();
    let mut compared = 0usize;
    let mut regressions = 0usize;
    let mut fresh_only = 0usize;
    for record in &fresh {
        let Some(key) = sweep_point_key(record) else {
            continue;
        };
        let Some(base_record) = by_key.get(&key) else {
            fresh_only += 1;
            continue;
        };
        let (Some(digest), Some(base_digest)) = (
            field_str(record, "state_digest"),
            field_str(base_record, "state_digest"),
        ) else {
            continue;
        };
        compared += 1;
        if digest != base_digest {
            regressions += 1;
            eprintln!(
                "  SWEEP TRAJECTORY DRIFT  {key}  state digest {} -> {} (merged accumulator \
                 bit state changed)",
                &base_digest[..16.min(base_digest.len())],
                &digest[..16.min(digest.len())]
            );
        }
    }
    println!(
        "\n=== {file}: {compared} sweep points compared bit-exactly, {fresh_only} new ===\n\
         [bench-report] {file}: {}/{compared} grid points replayed bit-identically",
        compared - regressions
    );
    (compared, regressions)
}

/// One comparison row: `(key, baseline, current, speedup)`.
struct Row {
    key: String,
    metric: &'static str,
    baseline: f64,
    current: f64,
    speedup: f64,
}

fn main() -> ExitCode {
    let tolerance = create_tensor::envcfg::read_validated("CREATE_BENCH_TOLERANCE", 0.20f64, |s| {
        match s.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
            _ => Err("expected a non-negative fraction, e.g. 0.20".to_string()),
        }
    });
    let fresh_dir = results_dir();
    let baseline_dir = fresh_dir.join("baseline");
    if !baseline_dir.is_dir() {
        // Warn but keep going: every comparison below will skip on its
        // missing baseline file, and the empty-comparison-set check at
        // the end turns "nothing was compared at all" into the failure.
        eprintln!(
            "[bench-report] no baseline directory at {} — commit one with \
             `cp results/BENCH_*.json results/baseline/`",
            baseline_dir.display()
        );
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for file in BENCH_FILES {
        let fresh_path = fresh_dir.join(file);
        if !fresh_path.is_file() {
            println!("[bench-report] {file}: no fresh results, skipped");
            continue;
        }
        let baseline_path = baseline_dir.join(file);
        if !baseline_path.is_file() {
            println!("[bench-report] {file}: no committed baseline, skipped");
            continue;
        }
        let (fresh, baseline) = match (load(&fresh_path), load(&baseline_path)) {
            (Ok(f), Ok(b)) => (f, b),
            (f, b) => {
                // A corrupt file knocks out this comparison, not the
                // report: warn and move on to the remaining files.
                for err in [f.err(), b.err()].into_iter().flatten() {
                    eprintln!("[bench-report] {err} — skipping this comparison");
                }
                continue;
            }
        };
        let by_key: BTreeMap<String, &FlatRecord> =
            baseline.iter().map(|r| (record_key(r), r)).collect();
        let mut rows: Vec<Row> = Vec::new();
        let mut fresh_only = 0usize;
        for record in &fresh {
            let Some((metric, current, higher_is_better)) = primary_metric(record) else {
                continue;
            };
            let key = record_key(record);
            let Some(base_record) = by_key.get(&key) else {
                fresh_only += 1;
                continue;
            };
            let Some((_, base, _)) = primary_metric(base_record) else {
                continue;
            };
            if !(base.is_finite() && current.is_finite()) || base <= 0.0 || current <= 0.0 {
                continue;
            }
            // Speedup > 1 always means "this run is faster than baseline".
            let speedup = if higher_is_better {
                current / base
            } else {
                base / current
            };
            rows.push(Row {
                key,
                metric,
                baseline: base,
                current,
                speedup,
            });
        }
        println!();
        println!(
            "=== {file}: {} compared, {fresh_only} new (tolerance {:.0}%) ===",
            rows.len(),
            tolerance * 100.0
        );
        let width = rows.iter().map(|r| r.key.len()).max().unwrap_or(0).min(90);
        for row in &rows {
            let flag = if row.speedup < 1.0 - tolerance {
                regressions += 1;
                "  << REGRESSION"
            } else if row.speedup > 1.0 + tolerance {
                "  (improved)"
            } else {
                ""
            };
            println!(
                "  {:<width$}  {:>12} {:>14.3} -> {:>14.3}  {:>6.2}x{flag}",
                row.key, row.metric, row.baseline, row.current, row.speedup,
            );
        }
        compared += rows.len();
        // The intra-run gates exist to catch *routing mistakes* — a
        // bucket sent to a kernel that is 2–4× off the winner — not
        // measurement drift: on shared/virtualized hosts the measured
        // speed of the *same* kernel swings by ~30% minute to minute
        // (an A/B check of dispatched-vs-direct calls shows <2% true
        // overhead). Floor their tolerance accordingly.
        let gate_tolerance = tolerance.max(0.50);
        regressions += gate_auto_vs_best(file, &fresh, gate_tolerance);
        if file == "BENCH_train.json" {
            regressions += gate_pool_vs_spawn(file, &fresh, gate_tolerance);
        }
        if file == "BENCH_serve_faulty.json" {
            // Success/energy records are seed-deterministic, not timing
            // measurements: the gate runs at its own fixed thresholds.
            regressions += gate_adaptive_vs_static(file, &fresh);
        }
    }
    let (sweep_compared, sweep_regressions) = compare_sweep_trajectory(&fresh_dir, &baseline_dir);
    compared += sweep_compared;
    regressions += sweep_regressions;
    println!();
    if regressions > 0 {
        eprintln!(
            "[bench-report] {regressions} metric(s) regressed by more than {:.0}% \
             against results/baseline/",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    if compared == 0 {
        eprintln!(
            "[bench-report] empty comparison set: no fresh record matched any committed \
             baseline — run the benches and/or refresh results/baseline/"
        );
        return ExitCode::FAILURE;
    }
    println!("[bench-report] {compared} metrics within tolerance of the committed baselines");
    ExitCode::SUCCESS
}
