//! Diffs freshly written `results/BENCH_*.json` files against the
//! committed baselines in `results/baseline/`, prints a per-shape
//! speedup table, and exits non-zero when any gated metric regressed by
//! more than the tolerance (`CREATE_BENCH_TOLERANCE`, default `0.20` =
//! 20%).
//!
//! Records are matched by their configuration identity (every string
//! field plus every integer field — bench name, shape, backend, thread
//! count, …); the gated metric per record is wall-clock
//! (`ns_per_iter`/`s_per_epoch`, lower is better) or throughput
//! (`trials_per_s`, higher is better). Fresh records without a baseline
//! counterpart are reported as `new` and never gate; a missing fresh
//! file is skipped (that bench simply did not run), while a missing
//! baseline directory is a hard error — commit one with
//! `cp results/BENCH_*.json results/baseline/`.
//!
//! ```text
//! cargo run -p create-bench --bin bench_report
//! ```

use create_bench::{parse_bench_json, primary_metric, record_key, FlatRecord};
use create_core::prelude::results_dir;
use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// The bench files the report covers (the machine-readable trajectory).
const BENCH_FILES: [&str; 3] = ["BENCH_kernels.json", "BENCH_fig01.json", "BENCH_train.json"];

fn load(path: &Path) -> Result<Vec<FlatRecord>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_bench_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// One comparison row: `(key, baseline, current, speedup)`.
struct Row {
    key: String,
    metric: &'static str,
    baseline: f64,
    current: f64,
    speedup: f64,
}

fn main() -> ExitCode {
    let tolerance = create_tensor::envcfg::read_validated("CREATE_BENCH_TOLERANCE", 0.20f64, |s| {
        match s.trim().parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
            _ => Err("expected a non-negative fraction, e.g. 0.20".to_string()),
        }
    });
    let fresh_dir = results_dir();
    let baseline_dir = fresh_dir.join("baseline");
    if !baseline_dir.is_dir() {
        eprintln!(
            "[bench-report] no baseline directory at {} — commit one with \
             `cp results/BENCH_*.json results/baseline/`",
            baseline_dir.display()
        );
        return ExitCode::FAILURE;
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for file in BENCH_FILES {
        let fresh_path = fresh_dir.join(file);
        if !fresh_path.is_file() {
            println!("[bench-report] {file}: no fresh results, skipped");
            continue;
        }
        let baseline_path = baseline_dir.join(file);
        if !baseline_path.is_file() {
            println!("[bench-report] {file}: no committed baseline, skipped");
            continue;
        }
        let (fresh, baseline) = match (load(&fresh_path), load(&baseline_path)) {
            (Ok(f), Ok(b)) => (f, b),
            (f, b) => {
                for err in [f.err(), b.err()].into_iter().flatten() {
                    eprintln!("[bench-report] {err}");
                }
                return ExitCode::FAILURE;
            }
        };
        let by_key: BTreeMap<String, &FlatRecord> =
            baseline.iter().map(|r| (record_key(r), r)).collect();
        let mut rows: Vec<Row> = Vec::new();
        let mut fresh_only = 0usize;
        for record in &fresh {
            let Some((metric, current, higher_is_better)) = primary_metric(record) else {
                continue;
            };
            let key = record_key(record);
            let Some(base_record) = by_key.get(&key) else {
                fresh_only += 1;
                continue;
            };
            let Some((_, base, _)) = primary_metric(base_record) else {
                continue;
            };
            if !(base.is_finite() && current.is_finite()) || base <= 0.0 || current <= 0.0 {
                continue;
            }
            // Speedup > 1 always means "this run is faster than baseline".
            let speedup = if higher_is_better {
                current / base
            } else {
                base / current
            };
            rows.push(Row {
                key,
                metric,
                baseline: base,
                current,
                speedup,
            });
        }
        println!();
        println!(
            "=== {file}: {} compared, {fresh_only} new (tolerance {:.0}%) ===",
            rows.len(),
            tolerance * 100.0
        );
        let width = rows.iter().map(|r| r.key.len()).max().unwrap_or(0).min(90);
        for row in &rows {
            let flag = if row.speedup < 1.0 - tolerance {
                regressions += 1;
                "  << REGRESSION"
            } else if row.speedup > 1.0 + tolerance {
                "  (improved)"
            } else {
                ""
            };
            println!(
                "  {:<width$}  {:>12} {:>14.3} -> {:>14.3}  {:>6.2}x{flag}",
                row.key, row.metric, row.baseline, row.current, row.speedup,
            );
        }
        compared += rows.len();
    }
    println!();
    if regressions > 0 {
        eprintln!(
            "[bench-report] {regressions} metric(s) regressed by more than {:.0}% \
             against results/baseline/",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("[bench-report] {compared} metrics within tolerance of the committed baselines");
    ExitCode::SUCCESS
}
