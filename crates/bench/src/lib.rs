//! Shared plumbing for the per-figure experiment harnesses.
//!
//! Every `benches/figXX_*.rs` target is a `harness = false` binary that
//! regenerates one table or figure of the paper: it loads the cached
//! trained agents, runs the experiment at `CREATE_REPS` repetitions
//! (default 40), prints the paper's rows/series as an aligned table, and
//! mirrors the data into `results/*.csv`.

use create_agents::AgentSystem;
use create_core::prelude::*;
use create_env::TaskId;
use create_tensor::Precision;
use std::time::Instant;

/// Loads (or trains) the JARVIS-1 testbed and deploys it at INT8.
pub fn jarvis_deployment() -> Deployment {
    let system = AgentSystem::jarvis();
    Deployment::new(&system, Precision::Int8)
}

/// The LDO-grid candidates scanned by minimal-voltage searches, gentle to
/// aggressive.
pub const V_SEARCH_GRID: [f64; 9] = [0.90, 0.89, 0.88, 0.87, 0.86, 0.85, 0.84, 0.83, 0.82];

/// Iso-task-quality acceptance used by the Fig. 16/17 minimal-voltage
/// searches: success within one trial of golden, and successful-trial
/// steps within 2.5× golden (unchecked step inflation is what inverts
/// per-task energy — Fig. 1d).
pub fn sustains_quality(golden: &SweepPoint, p: &SweepPoint) -> bool {
    let slack = 1.0 / p.n.max(1) as f64 + 1e-9;
    let success_ok = p.success_rate >= golden.success_rate - slack;
    let steps_ok = p.successes == 0 || p.avg_steps <= 2.5 * golden.avg_steps.max(1.0);
    success_ok && steps_ok
}

/// Scans [`V_SEARCH_GRID`] downward and returns the operating point for
/// `config_at(v)`: among the candidates that sustain `golden` task
/// quality (the scan stops at the first violation), the one with the
/// lowest compute energy is selected — an engineer would never deploy a
/// voltage that *costs* energy, which can otherwise happen at small rep
/// counts when a single within-slack failure carries its full step
/// budget. The gentlest candidate is always accepted as the anchor, so
/// the result is total.
pub fn min_voltage_point(
    dep: &Deployment,
    task: TaskId,
    golden: &SweepPoint,
    reps: u32,
    seed: u64,
    config_at: impl Fn(f64) -> CreateConfig,
) -> (f64, SweepPoint) {
    let mut best_v = V_SEARCH_GRID[0];
    let mut best = run_point(dep, task, &config_at(V_SEARCH_GRID[0]), reps, seed);
    for &v in &V_SEARCH_GRID[1..] {
        let p = run_point(dep, task, &config_at(v), reps, seed);
        if !sustains_quality(golden, &p) {
            break;
        }
        if p.avg_compute_j < best.avg_compute_j {
            best_v = v;
            best = p;
        }
    }
    (best_v, best)
}

/// A labeled experiment grid: harnesses collect `(row labels, task,
/// config)` cells from their nested loops, then fan **every trial of every
/// cell** over one engine worker pool with [`LabeledGrid::run`] — instead
/// of spinning a fresh pool per cell the way the old per-point loops did.
#[derive(Default)]
pub struct LabeledGrid {
    cells: Vec<(Vec<String>, TaskId, CreateConfig)>,
}

impl LabeledGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cell; `label` is whatever row prefix the figure's table
    /// needs to identify it.
    pub fn push(&mut self, label: Vec<String>, task: TaskId, config: CreateConfig) {
        self.cells.push((label, task, config));
    }

    /// Runs all cells at `reps` trials each over one worker pool and
    /// returns `(label, point)` per cell, in insertion order.
    pub fn run(self, dep: &Deployment, reps: u32, seed: u64) -> Vec<(Vec<String>, SweepPoint)> {
        let points = run_config_grid(
            dep,
            self.cells
                .iter()
                .map(|(_, task, config)| (*task, config.clone())),
            reps,
            seed,
        );
        self.cells
            .into_iter()
            .zip(points)
            .map(|((label, _, _), p)| (label, p))
            .collect()
    }
}

/// Prints a figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!();
    println!("=== {figure} — {caption} ===");
}

/// Prints a table and writes it to `results/<name>.csv`.
pub fn emit(table: &TextTable, name: &str) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Elapsed-time reporter for a whole bench target.
pub struct Stopwatch(Instant, &'static str);

impl Stopwatch {
    /// Starts timing a bench target.
    pub fn start(name: &'static str) -> Self {
        Self(Instant::now(), name)
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        println!(
            "[{}] completed in {:.1}s",
            self.1,
            self.0.elapsed().as_secs_f64()
        );
    }
}

/// The BER grid used by characterization sweeps (log-spaced).
pub fn ber_grid(lo_exp: i32, hi_exp: i32, per_decade: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for e in lo_exp..=hi_exp {
        for &m in per_decade {
            let v = m * 10f64.powi(e);
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ber_grid_is_log_spaced_and_sorted() {
        let g = ber_grid(-8, -6, &[1.0, 3.0]);
        assert_eq!(g.len(), 6);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!((g[0] - 1e-8).abs() < 1e-20);
    }
}
