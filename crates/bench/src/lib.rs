//! Shared plumbing for the per-figure experiment harnesses.
//!
//! Every `benches/figXX_*.rs` target is a `harness = false` binary that
//! regenerates one table or figure of the paper: it loads the cached
//! trained agents, runs the experiment at `CREATE_REPS` repetitions
//! (default 40), prints the paper's rows/series as an aligned table, and
//! mirrors the data into `results/*.csv`.

use create_agents::AgentSystem;
use create_core::prelude::*;
use create_env::TaskId;
use create_tensor::Precision;
use std::time::Instant;

/// Loads (or trains) the JARVIS-1 testbed and deploys it at INT8.
pub fn jarvis_deployment() -> Deployment {
    let system = AgentSystem::jarvis();
    Deployment::new(&system, Precision::Int8)
}

/// The LDO-grid candidates scanned by minimal-voltage searches, gentle to
/// aggressive.
pub const V_SEARCH_GRID: [f64; 9] = [0.90, 0.89, 0.88, 0.87, 0.86, 0.85, 0.84, 0.83, 0.82];

/// Iso-task-quality acceptance used by the Fig. 16/17 minimal-voltage
/// searches: success within one trial of golden, and successful-trial
/// steps within 2.5× golden (unchecked step inflation is what inverts
/// per-task energy — Fig. 1d).
pub fn sustains_quality(golden: &SweepPoint, p: &SweepPoint) -> bool {
    let slack = 1.0 / p.n.max(1) as f64 + 1e-9;
    let success_ok = p.success_rate >= golden.success_rate - slack;
    let steps_ok = p.successes == 0 || p.avg_steps <= 2.5 * golden.avg_steps.max(1.0);
    success_ok && steps_ok
}

/// Scans [`V_SEARCH_GRID`] downward and returns the operating point for
/// `config_at(v)`: among the candidates that sustain `golden` task
/// quality (the scan stops at the first violation), the one with the
/// lowest compute energy is selected — an engineer would never deploy a
/// voltage that *costs* energy, which can otherwise happen at small rep
/// counts when a single within-slack failure carries its full step
/// budget. The gentlest candidate is always accepted as the anchor, so
/// the result is total.
pub fn min_voltage_point(
    dep: &Deployment,
    task: TaskId,
    golden: &SweepPoint,
    reps: u32,
    seed: u64,
    config_at: impl Fn(f64) -> CreateConfig,
) -> (f64, SweepPoint) {
    let mut best_v = V_SEARCH_GRID[0];
    let mut best = run_point(dep, task, &config_at(V_SEARCH_GRID[0]), reps, seed);
    for &v in &V_SEARCH_GRID[1..] {
        let p = run_point(dep, task, &config_at(v), reps, seed);
        if !sustains_quality(golden, &p) {
            break;
        }
        if p.avg_compute_j < best.avg_compute_j {
            best_v = v;
            best = p;
        }
    }
    (best_v, best)
}

/// A labeled experiment grid: harnesses collect `(row labels, task,
/// config)` cells from their nested loops, then fan **every trial of every
/// cell** over one engine worker pool with [`LabeledGrid::run`] — instead
/// of spinning a fresh pool per cell the way the old per-point loops did.
#[derive(Default)]
pub struct LabeledGrid {
    cells: Vec<(Vec<String>, TaskId, CreateConfig)>,
}

impl LabeledGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cell; `label` is whatever row prefix the figure's table
    /// needs to identify it.
    pub fn push(&mut self, label: Vec<String>, task: TaskId, config: CreateConfig) {
        self.cells.push((label, task, config));
    }

    /// Runs all cells at `reps` trials each over one worker pool and
    /// returns `(label, point)` per cell, in insertion order.
    pub fn run(self, dep: &Deployment, reps: u32, seed: u64) -> Vec<(Vec<String>, SweepPoint)> {
        let points = run_config_grid(
            dep,
            self.cells
                .iter()
                .map(|(_, task, config)| (*task, config.clone())),
            reps,
            seed,
        );
        self.cells
            .into_iter()
            .zip(points)
            .map(|((label, _, _), p)| (label, p))
            .collect()
    }
}

/// One machine-readable benchmark record destined for a
/// `results/BENCH_*.json` file.
///
/// Fields are kept in insertion order and rendered as one flat JSON
/// object; numbers are emitted as JSON numbers, everything else as
/// strings. Future PRs diff these files to track the performance
/// trajectory (see `BENCH_kernels.json` / `BENCH_fig01.json`).
#[derive(Debug, Clone, Default)]
pub struct BenchRecord {
    fields: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchRecord {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: impl AsRef<str>) -> Self {
        self.fields.push((
            key.to_string(),
            format!("\"{}\"", json_escape(value.as_ref())),
        ));
        self
    }

    /// Adds a numeric field (rendered with enough precision to diff).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value:.6}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), rendered));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\": {v}", json_escape(k)))
            .collect();
        format!("  {{{}}}", body.join(", "))
    }
}

/// Writes `records` to `results/BENCH_<name>.json` as a JSON array (one
/// record per line, so diffs stay reviewable) and logs the path.
pub fn emit_bench_json(name: &str, records: &[BenchRecord]) {
    let path = results_dir().join(format!("BENCH_{name}.json"));
    let body: Vec<String> = records.iter().map(BenchRecord::render).collect();
    let json = format!("[\n{}\n]\n", body.join(",\n"));
    match std::fs::create_dir_all(results_dir()).and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => println!("[bench-json] {}", path.display()),
        Err(e) => eprintln!("[bench-json] failed to write {}: {e}", path.display()),
    }
}

/// A value in a parsed flat bench record.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchValue {
    /// A JSON string.
    Str(String),
    /// A JSON number, with its raw rendering kept so configuration
    /// integers (no `.`) can be told apart from measured floats.
    Num { raw: String, value: f64 },
    /// `null` (a non-finite measurement).
    Null,
}

/// One parsed record from a `results/BENCH_*.json` file: ordered
/// key/value pairs, exactly as [`BenchRecord`] emitted them.
pub type FlatRecord = Vec<(String, BenchValue)>;

type BenchChars<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn bench_json_skip_ws(chars: &mut BenchChars<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
        chars.next();
    }
}

fn bench_json_string(chars: &mut BenchChars<'_>) -> Result<String, String> {
    let mut s = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(s),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => s.push('"'),
                Some((_, '\\')) => s.push('\\'),
                Some((_, 'n')) => s.push('\n'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (at, c) = chars.next().ok_or("bench json: truncated \\u")?;
                        code = code * 16
                            + c.to_digit(16)
                                .ok_or(format!("bench json: bad \\u digit at byte {at}"))?;
                    }
                    s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                other => return Err(format!("bench json: bad escape {other:?}")),
            },
            Some((_, c)) => s.push(c),
            None => return Err("bench json: unterminated string".to_string()),
        }
    }
}

fn bench_json_value(chars: &mut BenchChars<'_>) -> Result<BenchValue, String> {
    match chars.peek().copied() {
        Some((_, '"')) => {
            chars.next();
            Ok(BenchValue::Str(bench_json_string(chars)?))
        }
        Some((_, 'n')) => {
            for want in "null".chars() {
                match chars.next() {
                    Some((_, c)) if c == want => {}
                    other => return Err(format!("bench json: expected null, got {other:?}")),
                }
            }
            Ok(BenchValue::Null)
        }
        Some((num_at, _)) => {
            let mut raw = String::new();
            while matches!(
                chars.peek(),
                Some((_, c)) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
            ) {
                raw.push(chars.next().expect("peeked").1);
            }
            let value = raw
                .parse::<f64>()
                .map_err(|e| format!("bench json: bad number at byte {num_at}: {e}"))?;
            Ok(BenchValue::Num { raw, value })
        }
        None => Err("bench json: expected value, got end of input".to_string()),
    }
}

/// Parses the JSON [`emit_bench_json`] writes: an array of flat objects
/// whose values are strings, numbers or `null`. This is a deliberately
/// small hand-rolled parser (the build environment has no registry, so
/// no serde) that accepts exactly the emitter's value grammar plus
/// arbitrary whitespace.
pub fn parse_bench_json(text: &str) -> Result<Vec<FlatRecord>, String> {
    let mut chars = text.char_indices().peekable();
    let mut records = Vec::new();
    bench_json_skip_ws(&mut chars);
    match chars.next() {
        Some((_, '[')) => {}
        other => return Err(format!("bench json: expected '[', got {other:?}")),
    }
    loop {
        bench_json_skip_ws(&mut chars);
        match chars.peek().copied() {
            Some((_, ']')) => {
                chars.next();
                return Ok(records);
            }
            Some((_, ',')) => {
                chars.next();
            }
            Some((_, '{')) => {
                chars.next();
                let mut record = FlatRecord::new();
                loop {
                    bench_json_skip_ws(&mut chars);
                    match chars.next() {
                        Some((_, '}')) => break,
                        Some((_, ',')) => continue,
                        Some((_, '"')) => {
                            let key = bench_json_string(&mut chars)?;
                            bench_json_skip_ws(&mut chars);
                            match chars.next() {
                                Some((_, ':')) => {}
                                other => {
                                    return Err(format!("bench json: expected ':', got {other:?}"))
                                }
                            }
                            bench_json_skip_ws(&mut chars);
                            record.push((key, bench_json_value(&mut chars)?));
                        }
                        other => return Err(format!("bench json: expected key, got {other:?}")),
                    }
                }
                records.push(record);
            }
            other => return Err(format!("bench json: expected record, got {other:?}")),
        }
    }
}

/// The identity of a record across runs: every string field plus every
/// *configuration* number (rendered without a decimal point — shapes,
/// thread counts, rep counts). [`BenchRecord::num`] always renders with
/// a decimal point, so values emitted through it never leak into the
/// key — which is why emitters must route **measured** quantities
/// through `.num(..)` (even integral ones, e.g. fig01's
/// `approx_success_steps`) and reserve `.int(..)`/`.str(..)` for
/// configuration: a measured value in the key would silently unmatch
/// the record from its baseline the moment behavior changes, turning
/// the regression gate off exactly when it matters.
pub fn record_key(record: &FlatRecord) -> String {
    let mut key = String::new();
    for (k, v) in record {
        match v {
            BenchValue::Str(s) => {
                key.push_str(&format!("{k}={s};"));
            }
            BenchValue::Num { raw, .. } if !raw.contains('.') => {
                key.push_str(&format!("{k}={raw};"));
            }
            _ => {}
        }
    }
    key
}

/// The measured metric `bench_report` gates on, per record:
/// `(field, value, higher_is_better)`. Wall-clock style metrics
/// (`ns_per_iter`, `s_per_epoch`) gate as lower-is-better; throughput
/// metrics (`trials_per_s`, the serve bench's `missions_per_s`) and the
/// fault-serving bench's `success_rate` as higher-is-better. Records
/// without a recognized metric (or with a `null` one) are not gated.
/// First listed metric present in the record wins, so emitters that
/// record several of these put the one they want gated first.
pub fn primary_metric(record: &FlatRecord) -> Option<(&'static str, f64, bool)> {
    const METRICS: [(&str, bool); 5] = [
        ("ns_per_iter", false),
        ("s_per_epoch", false),
        ("trials_per_s", true),
        ("missions_per_s", true),
        ("success_rate", true),
    ];
    for (name, higher_is_better) in METRICS {
        if let Some((_, BenchValue::Num { value, .. })) = record.iter().find(|(k, _)| k == name) {
            return Some((name, *value, higher_is_better));
        }
    }
    None
}

/// Median wall-clock nanoseconds per iteration of `f`, measured with a
/// short calibration warm-up — the fixed-cost timer behind the
/// `BENCH_*.json` records (criterion's shim prints human-readable output;
/// this produces the machine-readable numbers).
pub fn measure_ns_per_iter(mut f: impl FnMut()) -> f64 {
    use std::time::Instant;
    // Calibrate: how many iterations fit ~20 ms?
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        calib_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
    let iters_per_sample = ((0.02 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);
    // 9 samples of ~20 ms each; report the median against noise.
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    samples[samples.len() / 2]
}

/// Prints a figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!();
    println!("=== {figure} — {caption} ===");
}

/// Prints a table and writes it to `results/<name>.csv`.
pub fn emit(table: &TextTable, name: &str) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("[csv] {}", path.display()),
        Err(e) => eprintln!("[csv] failed to write {}: {e}", path.display()),
    }
}

/// Elapsed-time reporter for a whole bench target.
pub struct Stopwatch(Instant, &'static str);

impl Stopwatch {
    /// Starts timing a bench target.
    pub fn start(name: &'static str) -> Self {
        Self(Instant::now(), name)
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        println!(
            "[{}] completed in {:.1}s",
            self.1,
            self.0.elapsed().as_secs_f64()
        );
    }
}

/// The BER grid used by characterization sweeps (log-spaced).
pub fn ber_grid(lo_exp: i32, hi_exp: i32, per_decade: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for e in lo_exp..=hi_exp {
        for &m in per_decade {
            let v = m * 10f64.powi(e);
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_render_as_flat_json_objects() {
        let r = BenchRecord::new()
            .str("bench", "gemm_i8")
            .str("shape", "16x256x256")
            .num("ns_per_iter", 1234.5)
            .int("macs", 1_048_576);
        assert_eq!(
            r.render(),
            "  {\"bench\": \"gemm_i8\", \"shape\": \"16x256x256\", \
             \"ns_per_iter\": 1234.500000, \"macs\": 1048576}"
        );
        let quoted = BenchRecord::new().str("k", "a\"b\\c");
        assert_eq!(quoted.render(), "  {\"k\": \"a\\\"b\\\\c\"}");
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let records = [
            BenchRecord::new()
                .str("bench", "gemm_i8")
                .str("shape", "4x32x32")
                .str("backend", "wide")
                .num("ns_per_iter", 123.25)
                .int("macs", 4096)
                .num("macs_per_s", 3.3e10),
            BenchRecord::new().str("k", "a\"b\\c").num("nan", f64::NAN),
        ];
        let body: Vec<String> = records.iter().map(BenchRecord::render).collect();
        let json = format!("[\n{}\n]\n", body.join(",\n"));
        let parsed = parse_bench_json(&json).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0][0],
            ("bench".to_string(), BenchValue::Str("gemm_i8".to_string()))
        );
        assert_eq!(
            record_key(&parsed[0]),
            "bench=gemm_i8;shape=4x32x32;backend=wide;macs=4096;"
        );
        let (metric, value, higher) = primary_metric(&parsed[0]).expect("metric");
        assert_eq!(metric, "ns_per_iter");
        assert!((value - 123.25).abs() < 1e-9);
        assert!(!higher);
        // Non-finite metrics render as null and are not gated.
        assert_eq!(parsed[1][1], ("nan".to_string(), BenchValue::Null));
        assert_eq!(primary_metric(&parsed[1]), None);
        assert!(parse_bench_json("not json").is_err());
    }

    #[test]
    fn throughput_metrics_gate_as_higher_is_better() {
        let r = BenchRecord::new()
            .str("bench", "fig01_voltage_sweep")
            .int("reps", 8)
            .num("elapsed_s", 8.5)
            .num("trials_per_s", 6.4);
        let parsed = parse_bench_json(&format!("[\n{}\n]\n", r.render())).expect("parse");
        let (metric, value, higher) = primary_metric(&parsed[0]).expect("metric");
        assert_eq!(metric, "trials_per_s");
        assert!((value - 6.4).abs() < 1e-9);
        assert!(higher);
        assert_eq!(record_key(&parsed[0]), "bench=fig01_voltage_sweep;reps=8;");
    }

    #[test]
    fn measure_ns_per_iter_is_positive_and_sane() {
        let mut x = 0u64;
        let ns = measure_ns_per_iter(|| {
            x = x.wrapping_add(std::hint::black_box(1));
        });
        assert!(ns > 0.0 && ns < 1e7, "implausible ns/iter: {ns}");
    }

    #[test]
    fn ber_grid_is_log_spaced_and_sorted() {
        let g = ber_grid(-8, -6, &[1.0, 3.0]);
        assert_eq!(g.len(), 6);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!((g[0] - 1e-8).abs() < 1e-20);
    }
}
