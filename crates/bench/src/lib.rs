//! Shared plumbing for the per-figure experiment harnesses.
//!
//! Every `benches/figXX_*.rs` target is a `harness = false` binary that
//! regenerates one table or figure of the paper: it loads the cached
//! trained agents, runs the experiment at `CREATE_REPS` repetitions
//! (default 40), prints the paper's rows/series as an aligned table, and
//! mirrors the data into the schema-versioned results store
//! (`results/*.json`, see [`create_core::results`]).

use create_agents::AgentSystem;
use create_core::prelude::*;
use create_env::TaskId;
use create_tensor::Precision;
use std::time::Instant;

/// Loads (or trains) the JARVIS-1 testbed and deploys it at INT8.
pub fn jarvis_deployment() -> Deployment {
    let system = AgentSystem::jarvis();
    Deployment::new(&system, Precision::Int8)
}

/// The LDO-grid candidates scanned by minimal-voltage searches, gentle to
/// aggressive.
pub const V_SEARCH_GRID: [f64; 9] = [0.90, 0.89, 0.88, 0.87, 0.86, 0.85, 0.84, 0.83, 0.82];

/// Iso-task-quality acceptance used by the Fig. 16/17 minimal-voltage
/// searches: success within one trial of golden, and successful-trial
/// steps within 2.5× golden (unchecked step inflation is what inverts
/// per-task energy — Fig. 1d).
pub fn sustains_quality(golden: &SweepPoint, p: &SweepPoint) -> bool {
    let slack = 1.0 / p.n.max(1) as f64 + 1e-9;
    let success_ok = p.success_rate >= golden.success_rate - slack;
    let steps_ok = p.successes == 0 || p.avg_steps <= 2.5 * golden.avg_steps.max(1.0);
    success_ok && steps_ok
}

/// Scans [`V_SEARCH_GRID`] downward and returns the operating point for
/// `config_at(v)`: among the candidates that sustain `golden` task
/// quality (the scan stops at the first violation), the one with the
/// lowest compute energy is selected — an engineer would never deploy a
/// voltage that *costs* energy, which can otherwise happen at small rep
/// counts when a single within-slack failure carries its full step
/// budget. The gentlest candidate is always accepted as the anchor, so
/// the result is total.
pub fn min_voltage_point(
    dep: &Deployment,
    task: TaskId,
    golden: &SweepPoint,
    reps: u32,
    seed: u64,
    config_at: impl Fn(f64) -> CreateConfig,
) -> (f64, SweepPoint) {
    let mut best_v = V_SEARCH_GRID[0];
    let mut best = run_point(dep, task, &config_at(V_SEARCH_GRID[0]), reps, seed);
    for &v in &V_SEARCH_GRID[1..] {
        let p = run_point(dep, task, &config_at(v), reps, seed);
        if !sustains_quality(golden, &p) {
            break;
        }
        if p.avg_compute_j < best.avg_compute_j {
            best_v = v;
            best = p;
        }
    }
    (best_v, best)
}

/// A labeled experiment grid: harnesses collect `(row labels, task,
/// config)` cells from their nested loops, then fan **every trial of every
/// cell** over one engine worker pool with [`LabeledGrid::run`] — instead
/// of spinning a fresh pool per cell the way the old per-point loops did.
#[derive(Default)]
pub struct LabeledGrid {
    cells: Vec<(Vec<String>, TaskId, CreateConfig)>,
}

impl LabeledGrid {
    /// An empty grid.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one cell; `label` is whatever row prefix the figure's table
    /// needs to identify it.
    pub fn push(&mut self, label: Vec<String>, task: TaskId, config: CreateConfig) {
        self.cells.push((label, task, config));
    }

    /// Runs all cells at `reps` trials each over one worker pool and
    /// returns `(label, point)` per cell, in insertion order.
    pub fn run(self, dep: &Deployment, reps: u32, seed: u64) -> Vec<(Vec<String>, SweepPoint)> {
        let points = run_config_grid(
            dep,
            self.cells
                .iter()
                .map(|(_, task, config)| (*task, config.clone())),
            reps,
            seed,
        );
        self.cells
            .into_iter()
            .zip(points)
            .map(|((label, _, _), p)| (label, p))
            .collect()
    }
}

/// One machine-readable benchmark record destined for a
/// `results/BENCH_*.json` store document — the results-store
/// [`create_core::results::Record`] builder under its historical bench
/// name. Future PRs diff these files to track the performance trajectory
/// (see `BENCH_kernels.json` / `BENCH_fig01.json`).
pub use create_core::results::Record as BenchRecord;

/// A value in a parsed flat bench record (the results-store
/// [`create_core::results::Value`]).
pub use create_core::results::Value as BenchValue;

/// One parsed record from a `results/BENCH_*.json` file: ordered
/// key/value pairs, exactly as [`BenchRecord`] emitted them.
pub use create_core::results::FlatRecord;

/// Writes `records` to `results/BENCH_<name>.json` as a schema-versioned
/// store document (one record per line, so diffs stay reviewable),
/// crash-safely (temp file + fsync + atomic rename), and logs the path.
pub fn emit_bench_json(name: &str, records: &[BenchRecord]) {
    let path = results_dir().join(format!("BENCH_{name}.json"));
    match create_core::results::write_doc(&path, name, records) {
        Ok(()) => println!("[bench-json] {}", path.display()),
        Err(e) => eprintln!("[bench-json] failed to write {}: {e}", path.display()),
    }
}

/// Parses the records of a `results/BENCH_*.json` file: either the
/// schema-versioned envelope [`emit_bench_json`] writes today or the
/// legacy bare-array format committed baselines still use (see
/// [`create_core::results::parse_doc`] — the envelope metadata is
/// dropped because record matching goes by [`record_key`], not by
/// document identity).
pub fn parse_bench_json(text: &str) -> Result<Vec<FlatRecord>, String> {
    create_core::results::parse_doc(text).map(|doc| doc.records)
}

/// The identity of a record across runs: every string field plus every
/// *configuration* number (rendered without a decimal point — shapes,
/// thread counts, rep counts). [`BenchRecord::num`] always renders with
/// a decimal point, so values emitted through it never leak into the
/// key — which is why emitters must route **measured** quantities
/// through `.num(..)` (even integral ones, e.g. fig01's
/// `approx_success_steps`) and reserve `.int(..)`/`.str(..)` for
/// configuration: a measured value in the key would silently unmatch
/// the record from its baseline the moment behavior changes, turning
/// the regression gate off exactly when it matters.
pub fn record_key(record: &FlatRecord) -> String {
    let mut key = String::new();
    for (k, v) in record {
        match v {
            BenchValue::Str(s) => {
                key.push_str(&format!("{k}={s};"));
            }
            BenchValue::Num { raw, .. } if !raw.contains('.') => {
                key.push_str(&format!("{k}={raw};"));
            }
            _ => {}
        }
    }
    key
}

/// The measured metric `bench_report` gates on, per record:
/// `(field, value, higher_is_better)`. Wall-clock style metrics
/// (`ns_per_iter`, `s_per_epoch`) gate as lower-is-better; throughput
/// metrics (`trials_per_s`, the serve bench's `missions_per_s`, the net
/// bench's `requests_per_s`) and the fault-serving bench's
/// `success_rate` as higher-is-better. Records without a recognized
/// metric (or with a `null` one) are not gated. First listed metric
/// present in the record wins, so emitters that record several of these
/// put the one they want gated first.
pub fn primary_metric(record: &FlatRecord) -> Option<(&'static str, f64, bool)> {
    const METRICS: [(&str, bool); 6] = [
        ("ns_per_iter", false),
        ("s_per_epoch", false),
        ("trials_per_s", true),
        ("missions_per_s", true),
        ("requests_per_s", true),
        ("success_rate", true),
    ];
    for (name, higher_is_better) in METRICS {
        if let Some((_, BenchValue::Num { value, .. })) = record.iter().find(|(k, _)| k == name) {
            return Some((name, *value, higher_is_better));
        }
    }
    None
}

/// Median wall-clock nanoseconds per iteration of `f`, measured with a
/// short calibration warm-up — the fixed-cost timer behind the
/// `BENCH_*.json` records (criterion's shim prints human-readable output;
/// this produces the machine-readable numbers).
pub fn measure_ns_per_iter(mut f: impl FnMut()) -> f64 {
    use std::time::Instant;
    // Calibrate: how many iterations fit ~20 ms?
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_millis() < 20 {
        f();
        calib_iters += 1;
    }
    let per_iter = start.elapsed().as_secs_f64() / calib_iters.max(1) as f64;
    let iters_per_sample = ((0.02 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);
    // 9 samples of ~20 ms each; report the median against noise.
    let mut samples: Vec<f64> = (0..9)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    samples[samples.len() / 2]
}

/// Prints a figure banner.
pub fn banner(figure: &str, caption: &str) {
    println!();
    println!("=== {figure} — {caption} ===");
}

/// Prints a table and mirrors it into the results store at
/// `results/<name>.json` (crash-safe schema-versioned document; each row
/// becomes one record keyed by the column headers).
pub fn emit(table: &TextTable, name: &str) {
    println!("{}", table.render());
    let path = results_dir().join(format!("{name}.json"));
    match create_core::results::write_doc(&path, name, &table.to_records()) {
        Ok(()) => println!("[results] {}", path.display()),
        Err(e) => eprintln!("[results] failed to write {}: {e}", path.display()),
    }
}

/// Elapsed-time reporter for a whole bench target.
pub struct Stopwatch(Instant, &'static str);

impl Stopwatch {
    /// Starts timing a bench target.
    pub fn start(name: &'static str) -> Self {
        Self(Instant::now(), name)
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        println!(
            "[{}] completed in {:.1}s",
            self.1,
            self.0.elapsed().as_secs_f64()
        );
    }
}

/// The BER grid used by characterization sweeps (log-spaced).
pub fn ber_grid(lo_exp: i32, hi_exp: i32, per_decade: &[f64]) -> Vec<f64> {
    let mut out = Vec::new();
    for e in lo_exp..=hi_exp {
        for &m in per_decade {
            let v = m * 10f64.powi(e);
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_records_render_as_flat_json_objects() {
        let r = BenchRecord::new()
            .str("bench", "gemm_i8")
            .str("shape", "16x256x256")
            .num("ns_per_iter", 1234.5)
            .int("macs", 1_048_576);
        assert_eq!(
            r.render(),
            "  {\"bench\": \"gemm_i8\", \"shape\": \"16x256x256\", \
             \"ns_per_iter\": 1234.500000, \"macs\": 1048576}"
        );
        let quoted = BenchRecord::new().str("k", "a\"b\\c");
        assert_eq!(quoted.render(), "  {\"k\": \"a\\\"b\\\\c\"}");
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let records = [
            BenchRecord::new()
                .str("bench", "gemm_i8")
                .str("shape", "4x32x32")
                .str("backend", "wide")
                .num("ns_per_iter", 123.25)
                .int("macs", 4096)
                .num("macs_per_s", 3.3e10),
            BenchRecord::new().str("k", "a\"b\\c").num("nan", f64::NAN),
        ];
        let body: Vec<String> = records.iter().map(BenchRecord::render).collect();
        let json = format!("[\n{}\n]\n", body.join(",\n"));
        let parsed = parse_bench_json(&json).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed[0][0],
            ("bench".to_string(), BenchValue::Str("gemm_i8".to_string()))
        );
        assert_eq!(
            record_key(&parsed[0]),
            "bench=gemm_i8;shape=4x32x32;backend=wide;macs=4096;"
        );
        let (metric, value, higher) = primary_metric(&parsed[0]).expect("metric");
        assert_eq!(metric, "ns_per_iter");
        assert!((value - 123.25).abs() < 1e-9);
        assert!(!higher);
        // Non-finite metrics render as null and are not gated.
        assert_eq!(parsed[1][1], ("nan".to_string(), BenchValue::Null));
        assert_eq!(primary_metric(&parsed[1]), None);
        assert!(parse_bench_json("not json").is_err());
    }

    #[test]
    fn throughput_metrics_gate_as_higher_is_better() {
        let r = BenchRecord::new()
            .str("bench", "fig01_voltage_sweep")
            .int("reps", 8)
            .num("elapsed_s", 8.5)
            .num("trials_per_s", 6.4);
        let parsed = parse_bench_json(&format!("[\n{}\n]\n", r.render())).expect("parse");
        let (metric, value, higher) = primary_metric(&parsed[0]).expect("metric");
        assert_eq!(metric, "trials_per_s");
        assert!((value - 6.4).abs() < 1e-9);
        assert!(higher);
        assert_eq!(record_key(&parsed[0]), "bench=fig01_voltage_sweep;reps=8;");
    }

    #[test]
    fn measure_ns_per_iter_is_positive_and_sane() {
        let mut x = 0u64;
        let ns = measure_ns_per_iter(|| {
            x = x.wrapping_add(std::hint::black_box(1));
        });
        assert!(ns > 0.0 && ns < 1e7, "implausible ns/iter: {ns}");
    }

    #[test]
    fn ber_grid_is_log_spaced_and_sorted() {
        let g = ber_grid(-8, -6, &[1.0, 3.0]);
        assert_eq!(g.len(), 6);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!((g[0] - 1e-8).abs() < 1e-20);
    }
}
