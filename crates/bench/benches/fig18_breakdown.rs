//! Fig. 18: chip-level energy breakdown. Computation dominates both units
//! (≈62–67% for planners, ≈77–79% for controllers, where DRAM is
//! amortized), so computational savings translate to substantial chip-level
//! savings — and, with computation a large share of robot power, to
//! battery-life gains (Sec. 6.8).

use create_agents::presets::{ControllerPreset, PlannerPreset};
use create_bench::{banner, emit, jarvis_deployment, min_voltage_point, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;
use create_tensor::Precision;

fn main() {
    let _t = Stopwatch::start("fig18");

    banner(
        "Fig. 18",
        "per-inference energy breakdown (reference scale)",
    );
    let planners = [
        ("JARVIS-1 planner", PlannerPreset::jarvis().inference_cost()),
        ("OpenVLA", PlannerPreset::openvla().inference_cost()),
        (
            "RoboFlamingo",
            PlannerPreset::roboflamingo().inference_cost(),
        ),
    ];
    let controllers = [
        (
            "JARVIS-1 controller",
            ControllerPreset::jarvis().inference_cost(),
        ),
        ("RT-1", ControllerPreset::rt1().inference_cost()),
        ("Octo", ControllerPreset::octo().inference_cost()),
    ];
    let mut t = TextTable::new(vec![
        "model",
        "compute_pct",
        "sram_pct",
        "dram_pct",
        "total_j_nominal",
    ]);
    for (name, cost) in planners.iter().chain(controllers.iter()) {
        let compute = cost.compute_energy(0.9, Precision::Int8);
        let total = cost.total_energy(0.9, Precision::Int8);
        let sram = cost.sram_bytes * create_accel::energy::E_SRAM_BYTE;
        let dram = cost.dram_bytes * create_accel::energy::E_DRAM_BYTE;
        t.row(vec![
            name.to_string(),
            pct(compute / total),
            pct(sram / total),
            pct(dram / total),
            format!("{:.3}", total),
        ]);
    }
    emit(&t, "fig18_breakdown");

    banner(
        "Fig. 18 (cont.)",
        "computational savings -> chip-level savings (measured missions)",
    );
    let dep = jarvis_deployment();
    let reps = default_reps();
    let mut t = TextTable::new(vec![
        "task",
        "compute_savings",
        "chip_level_savings",
        "battery_life_gain",
    ]);
    for task in [TaskId::Wooden, TaskId::Stone, TaskId::Chicken] {
        let nominal = run_point(&dep, task, &CreateConfig::golden(), reps, 0x18A);
        // Full CREATE stack at this task's searched minimal iso-quality
        // voltage (same acceptance rule as Fig. 16b).
        let (_, protected) =
            min_voltage_point(&dep, task, &nominal, reps, 0x18A, |v| CreateConfig {
                planner_ad: true,
                controller_ad: true,
                wr: true,
                planner_voltage: v,
                voltage: VoltageControl::adaptive(create_baselines::shifted_policy(v)),
                planner_error: Some(ErrorSpec::voltage()),
                controller_error: Some(ErrorSpec::voltage()),
                ..CreateConfig::golden()
            });
        let compute_savings = 1.0 - protected.avg_compute_j / nominal.avg_compute_j;
        let chip_savings = 1.0 - protected.avg_energy_j / nominal.avg_energy_j;
        // Battery life: computation is ~50% of total robot power (Sec. 6.8
        // cites configurations where compute rivals mechanical power), so
        // life extends by 1/(1 - 0.5*chip_savings) - 1.
        let battery = 1.0 / (1.0 - 0.5 * chip_savings) - 1.0;
        t.row(vec![
            task.to_string(),
            pct(compute_savings),
            pct(chip_savings),
            pct(battery),
        ]);
    }
    emit(&t, "fig18_savings_translation");
    println!(
        "Expected shape: chip-level savings are a large fraction of compute\n\
         savings (paper: 29.5–37.3% chip-level from 40–50% computational)."
    );
}
