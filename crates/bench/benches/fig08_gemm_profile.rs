//! Fig. 8(a): runtime GEMM output distribution. Profiling the deployed
//! pipeline shows (1) outputs rarely occupy the most significant bits and
//! (2) most elements sit near zero — the two properties that justify
//! clamping out-of-bound results to zero (Sec. 5.1).
//!
//! The harness is parameterized over every [`GemmBackendKind`]: the same
//! planner/controller traffic is profiled once per backend and the
//! histograms are asserted bin-for-bin identical, so the figure doubles as
//! an end-to-end backend-parity check on real model workloads.

use create_accel::gemm::GemmBackendKind;
use create_accel::{AccelConfig, Accelerator, OutputProfiler};
use create_agents::vocab;
use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::{TaskId, World};
use create_tensor::stats::Histogram;

/// One profiled pass of representative planner + controller GEMMs.
fn profile_backend(dep: &create_core::Deployment, backend: GemmBackendKind) -> Histogram {
    let mut accel = Accelerator::new(
        AccelConfig {
            backend,
            ..Default::default()
        },
        0,
    );
    accel.set_profiler(Some(OutputProfiler::new(-40.0, 40.0, 40, 7)));
    // Drive both models over representative inputs.
    let tokens = vocab::context_tokens(TaskId::Iron, &[]);
    let _ = dep.planner.last_logits(&mut accel, &tokens, None);
    let mut world = World::for_task(TaskId::Stone, 5);
    for _ in 0..30 {
        let obs = world.observe();
        let _ = dep.controller.logits(&mut accel, &obs, None);
        world.step(create_env::Action::North);
    }
    let profiler = accel.take_profiler().expect("profiler");
    profiler.histogram().clone()
}

fn main() {
    let _t = Stopwatch::start("fig08");
    let dep = jarvis_deployment();

    banner(
        "Fig. 8(a)",
        "runtime GEMM output distribution (golden pipeline, all backends)",
    );
    // ALL is reference-first, so hists[0] is the scalar reference; each
    // backend is profiled exactly once.
    let hists: Vec<(GemmBackendKind, Histogram)> = GemmBackendKind::ALL
        .into_iter()
        .map(|kind| (kind, profile_backend(&dep, kind)))
        .collect();
    let (_, reference) = &hists[0];
    for (kind, hist) in &hists {
        assert_eq!(
            (hist.bins(), hist.underflow(), hist.overflow()),
            (
                reference.bins(),
                reference.underflow(),
                reference.overflow()
            ),
            "backend {kind} produced a different output distribution"
        );
        println!("backend {kind:<8} histogram matches the scalar reference");
    }

    let mut t = TextTable::new(vec!["bin_center", "count"]);
    for (i, count) in reference.bins().iter().enumerate() {
        t.row(vec![
            format!("{:.1}", reference.bin_center(i)),
            count.to_string(),
        ]);
    }
    emit(&t, "fig08a_gemm_profile");
    let total = reference.total();
    let near_zero: u64 = (0..reference.bins().len())
        .filter(|&i| reference.bin_center(i).abs() < 6.0)
        .map(|i| reference.bins()[i])
        .sum();
    println!(
        "samples: {total}; fraction within |value| < 6: {:.1}%; overflow \
         (beyond ±40): {}",
        100.0 * near_zero as f64 / total.max(1) as f64,
        reference.overflow() + reference.underflow()
    );
    println!("Expected shape: sharply peaked at zero with thin tails.");
}
