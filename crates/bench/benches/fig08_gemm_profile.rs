//! Fig. 8(a): runtime GEMM output distribution. Profiling the deployed
//! pipeline shows (1) outputs rarely occupy the most significant bits and
//! (2) most elements sit near zero — the two properties that justify
//! clamping out-of-bound results to zero (Sec. 5.1).

use create_accel::{Accelerator, OutputProfiler};
use create_agents::vocab;
use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::{TaskId, World};

fn main() {
    let _t = Stopwatch::start("fig08");
    let dep = jarvis_deployment();

    banner(
        "Fig. 8(a)",
        "runtime GEMM output distribution (golden pipeline)",
    );
    let mut accel = Accelerator::ideal(0);
    accel.set_profiler(Some(OutputProfiler::new(-40.0, 40.0, 40, 7)));
    // Drive both models over representative inputs.
    let tokens = vocab::context_tokens(TaskId::Iron, &[]);
    let _ = dep.planner.last_logits(&mut accel, &tokens, None);
    let mut world = World::for_task(TaskId::Stone, 5);
    for _ in 0..30 {
        let obs = world.observe();
        let _ = dep.controller.logits(&mut accel, &obs, None);
        world.step(create_env::Action::North);
    }
    let profiler = accel.take_profiler().expect("profiler");
    let hist = profiler.histogram();
    let mut t = TextTable::new(vec!["bin_center", "count"]);
    for i in 0..hist.bins().len() {
        t.row(vec![
            format!("{:.1}", hist.bin_center(i)),
            hist.bins()[i].to_string(),
        ]);
    }
    emit(&t, "fig08a_gemm_profile");
    let total = hist.total();
    let near_zero: u64 = (17..23).map(|i| hist.bins()[i]).sum();
    println!(
        "samples: {total}; fraction within |value| < 6: {:.1}%; overflow \
         (beyond ±40): {}",
        100.0 * near_zero as f64 / total.max(1) as f64,
        hist.overflow() + hist.underflow()
    );
    println!("Expected shape: sharply peaked at zero with thin tails.");
}
