//! Fig. 16: the overall evaluation across eight Minecraft tasks.
//!
//! (a) At a fixed aggressive voltage, the configurations `none → AD →
//! AD+WR → AD+WR+VS` progressively recover task success and cut energy.
//! (b) Each configuration is run at the lowest voltage that sustains
//! iso-task-quality — found by scanning the LDO grid downward per (task,
//! config) until success drops below golden or steps inflate past 2.5×
//! (step inflation is what inverts per-task energy, Fig. 1d) — which
//! quantifies the computational-energy savings vs nominal.
//!
//! The protected minima land higher than the paper's 0.75 V because the
//! proxy planner's protected BER window is narrower — see EXPERIMENTS.md.

use create_bench::{banner, emit, jarvis_deployment, min_voltage_point, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

/// The aggressive common voltage for panel (a).
const PANEL_A_VOLTAGE: f64 = 0.84;

fn config_for(name: &str, v: f64) -> CreateConfig {
    let base = CreateConfig::undervolted(v);
    match name {
        "none" => base,
        "AD" => CreateConfig {
            planner_ad: true,
            controller_ad: true,
            ..base
        },
        "AD+WR" => CreateConfig {
            planner_ad: true,
            controller_ad: true,
            wr: true,
            ..base
        },
        "AD+WR+VS" => CreateConfig {
            planner_ad: true,
            controller_ad: true,
            wr: true,
            voltage: VoltageControl::adaptive(create_baselines::shifted_policy(v)),
            ..base
        },
        _ => unreachable!(),
    }
}

fn main() {
    let _t = Stopwatch::start("fig16");
    let dep = jarvis_deployment();
    let reps = default_reps();
    let configs = ["none", "AD", "AD+WR", "AD+WR+VS"];

    banner(
        "Fig. 16(a)",
        "success & energy at a fixed aggressive voltage (0.84 V here)",
    );
    let mut t = TextTable::new(vec![
        "task",
        "config",
        "success_rate",
        "avg_steps",
        "energy_j",
    ]);
    for &task in &TaskId::OVERALL_EIGHT {
        let golden = run_point(&dep, task, &CreateConfig::golden(), reps, 0x16);
        t.row(vec![
            task.to_string(),
            "golden 0.90V".to_string(),
            pct(golden.success_rate),
            format!("{:.0}", golden.avg_steps),
            format!("{:.2}", golden.avg_energy_j),
        ]);
        for name in configs {
            let p = run_point(&dep, task, &config_for(name, PANEL_A_VOLTAGE), reps, 0x16);
            t.row(vec![
                task.to_string(),
                name.to_string(),
                pct(p.success_rate),
                format!("{:.0}", p.avg_steps),
                format!("{:.2}", p.avg_energy_j),
            ]);
        }
    }
    emit(&t, "fig16a_overall_fixed_voltage");

    banner(
        "Fig. 16(b)",
        "energy at each configuration's minimal iso-quality voltage (searched)",
    );
    let mut t = TextTable::new(vec![
        "task",
        "config",
        "min_voltage",
        "success_rate",
        "compute_j",
        "savings_vs_nominal",
    ]);
    let mut total_savings = vec![0.0f64; configs.len()];
    let mut included = 0u32;
    for &task in &TaskId::OVERALL_EIGHT {
        let nominal = run_point(&dep, task, &CreateConfig::golden(), reps, 0x16B);
        if nominal.success_rate < 0.5 {
            println!(
                "  [skip] {task}: golden success {} is too weak to anchor a savings comparison",
                pct(nominal.success_rate)
            );
            continue;
        }
        included += 1;
        for (ci, &name) in configs.iter().enumerate() {
            let (chosen_v, chosen) =
                min_voltage_point(&dep, task, &nominal, reps, 0x16B, |v| config_for(name, v));
            let savings = 1.0 - chosen.avg_compute_j / nominal.avg_compute_j;
            total_savings[ci] += savings;
            t.row(vec![
                task.to_string(),
                name.to_string(),
                format!("{chosen_v:.2}"),
                pct(chosen.success_rate),
                format!("{:.2}", chosen.avg_compute_j),
                pct(savings),
            ]);
        }
    }
    emit(&t, "fig16b_min_voltage_savings");
    println!("average computational-energy savings vs nominal ({included} tasks):");
    for (ci, &name) in configs.iter().enumerate() {
        println!(
            "  {name:>9}: {:.1}%",
            100.0 * total_savings[ci] / included.max(1) as f64
        );
    }
    println!(
        "Expected shape: savings grow monotonically none -> AD -> AD+WR ->\n\
         AD+WR+VS while success stays at the golden level (paper: 11.1% ->\n\
         18.8% -> 40.6% cumulative; our protected minima are higher, so the\n\
         absolute percentages are smaller — the ordering is the claim)."
    );
}
