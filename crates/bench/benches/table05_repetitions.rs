//! Table 5: statistical significance of repetitions. The measured success
//! rate converges by ~100 repetitions, justifying the paper's ≥100-trial
//! protocol (and this reproduction's CREATE_REPS scaling knob).

use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("table05");
    let dep = jarvis_deployment();

    banner(
        "Table 5",
        "measured success rate vs repetition count (wooden, controller BER 1e-4)",
    );
    let config = CreateConfig {
        controller_error: Some(ErrorSpec::uniform(1e-4)),
        ..CreateConfig::golden()
    };
    // One pool of 200 outcomes; prefixes emulate smaller experiments.
    let outcomes = run_outcomes(&dep, TaskId::Wooden, &config, 200, 0x05);
    let mut t = TextTable::new(vec!["repetitions", "success_rate", "ci_low", "ci_high"]);
    for n in [20usize, 40, 60, 80, 90, 100, 110, 120, 140, 160, 180, 200] {
        let p = SweepPoint::from_outcomes(&outcomes[..n]);
        t.row(vec![
            n.to_string(),
            pct(p.success_rate),
            pct(p.ci.0),
            pct(p.ci.1),
        ]);
    }
    emit(&t, "table05_repetitions");
    println!("Expected shape: estimates stabilize (±3-5%) by ~100 repetitions.");
}
