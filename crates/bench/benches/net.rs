//! Network-serving throughput/latency: closed-loop TCP clients against
//! the `create-net` front-end over loopback.
//!
//! The serve bench measures the engine behind an in-process call; this
//! one adds the wire — framing, the per-connection reader/writer pair,
//! and a real socket round trip per request. At each concurrency level,
//! `c` clients each run a connect-once, call → await loop (one request
//! outstanding per client), measuring requests/s and client-observed
//! p50/p99 latency. Levels come from `CREATE_NET_LEVELS`
//! (comma-separated, default `1,4,16`; CI smoke runs `1,4`), and each
//! level's request count derives from the level alone, so the record
//! keys — and the committed baseline in
//! `results/baseline/BENCH_net.json` — are stable across machines.

use create_bench::{banner, emit_bench_json, jarvis_deployment, BenchRecord, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;
use create_net::{NetClient, NetClientConfig, NetConfig, NetResponse, NetServer, WireConfig};
use create_serve::{MissionEngine, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

/// Pinned in the record key: the bench measures the serving path, not
/// the machine, so the baseline must not drift with core count.
const WORKERS: usize = 4;
const QUEUE: usize = 256;
const INFLIGHT: usize = 32;

/// The concurrency levels, newtyped for the shared env contract
/// (`parse_validated` needs `Display` for its fallback message).
struct Levels(Vec<usize>);

impl std::fmt::Display for Levels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rendered: Vec<String> = self.0.iter().map(usize::to_string).collect();
        f.write_str(&rendered.join(","))
    }
}

/// `CREATE_NET_LEVELS`: comma-separated positive client counts, through
/// the shared warn-and-fallback contract.
fn net_levels() -> Vec<usize> {
    create_tensor::envcfg::parse_validated(
        "CREATE_NET_LEVELS",
        std::env::var("CREATE_NET_LEVELS").ok().as_deref(),
        Levels(vec![1, 4, 16]),
        |raw| {
            let levels = raw
                .split(',')
                .map(|t| match t.trim().parse::<usize>() {
                    Ok(v) if v > 0 => Ok(v),
                    _ => Err("expected comma-separated positive integers".to_string()),
                })
                .collect::<Result<Vec<usize>, String>>()?;
            if levels.is_empty() {
                return Err("expected at least one level".to_string());
            }
            Ok(Levels(levels))
        },
    )
    .0
}

/// Requests per level, a pure function of the concurrency so the record
/// key is machine-independent.
fn requests_for(concurrency: usize) -> u64 {
    (3 * concurrency as u64).max(48)
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((p * (sorted_ns.len() - 1) as f64).round() as usize).min(sorted_ns.len() - 1);
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let _t = Stopwatch::start("net");
    let dep = Arc::new(jarvis_deployment());
    let task = TaskId::Wooden;

    banner(
        "Net",
        "closed-loop requests/s and latency vs TCP client concurrency",
    );
    let mut table = TextTable::new(vec![
        "clients",
        "requests",
        "requests_per_s",
        "p50_ms",
        "p99_ms",
    ]);
    let mut records = Vec::new();
    for concurrency in net_levels() {
        let engine = Arc::new(MissionEngine::start(
            Arc::clone(&dep),
            ServeConfig::builder()
                .workers(WORKERS)
                .queue(QUEUE)
                .base_seed(0x4E37)
                // Measurements must stay chaos-free even when the suite
                // runs under the chaos env knobs (the CI smoke jobs).
                .chaos(0.0)
                .governor(None)
                .build(),
        ));
        let server = NetServer::start(
            Arc::clone(&engine),
            NetConfig::builder()
                .addr("127.0.0.1:0")
                .inflight(INFLIGHT)
                .chaos(0.0)
                .build(),
        )
        .expect("bind loopback");
        let addr = server.local_addr().to_string();

        // One throwaway request so session warm-up and lazy init stay
        // out of the measured window.
        NetClient::connect(addr.clone())
            .call(task, WireConfig::Golden)
            .expect("warm-up resolves");

        let requests = requests_for(concurrency);
        let started = Instant::now();
        let latencies_ns = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..concurrency)
                .map(|client| {
                    let addr = addr.clone();
                    // Spread the remainder so exactly `requests` run.
                    let quota = requests / concurrency as u64
                        + u64::from((client as u64) < requests % concurrency as u64);
                    scope.spawn(move || {
                        let mut config = NetClientConfig::new(addr);
                        config.seed = client as u64;
                        let mut net = NetClient::with_config(config);
                        let mut latencies = Vec::with_capacity(quota as usize);
                        for _ in 0..quota {
                            let t = Instant::now();
                            let response =
                                net.call(task, WireConfig::Golden).expect("call resolves");
                            assert!(
                                matches!(response, NetResponse::Done(_)),
                                "chaos-free closed loop must complete: {response:?}"
                            );
                            let ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                            latencies.push(ns);
                        }
                        net.goodbye();
                        latencies
                    })
                })
                .collect();
            let mut all: Vec<u64> = Vec::with_capacity(requests as usize);
            for client in clients {
                all.extend(client.join().expect("client thread"));
            }
            all
        });
        let elapsed = started.elapsed().as_secs_f64();
        server.shutdown();
        match Arc::try_unwrap(engine) {
            Ok(engine) => engine.shutdown(),
            Err(_) => unreachable!("server drained; no other engine handles"),
        }

        let mut sorted = latencies_ns.clone();
        sorted.sort_unstable();
        let requests_per_s = requests as f64 / elapsed.max(1e-9);
        let p50 = percentile_ms(&sorted, 0.50);
        let p99 = percentile_ms(&sorted, 0.99);
        table.row(vec![
            concurrency.to_string(),
            requests.to_string(),
            format!("{requests_per_s:.2}"),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
        ]);
        records.push(
            BenchRecord::new()
                .str("bench", "net_closed_loop")
                .str("task", "wooden")
                .int("workers", WORKERS as u64)
                .int("queue", QUEUE as u64)
                .int("inflight", INFLIGHT as u64)
                .int("concurrency", concurrency as u64)
                .int("requests", requests)
                .num("elapsed_s", elapsed)
                .num("requests_per_s", requests_per_s)
                .num("p50_ms", p50)
                .num("p99_ms", p99),
        );
    }
    println!("{}", table.render());
    emit_bench_json("net", &records);
    println!(
        "Expected shape: requests/s tracks the serve bench's missions/s\n\
         within the loopback round-trip overhead, climbing toward the\n\
         {WORKERS}-worker service ceiling as clients increase."
    );
}
