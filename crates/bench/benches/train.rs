//! Training-stack benchmark: the f32 GEMM kernels at the testbed shapes
//! the planner/controller training loops actually run, head-to-head
//! across [`FloatBackendKind`]s, plus end-to-end training throughput
//! (epochs/s) for both proxy agents at 1, 2 and 4 data-parallel workers.
//!
//! Writes `results/BENCH_train.json` so every future PR has a training
//! baseline to beat (`bench_report` diffs it against
//! `results/baseline/`). The GEMM section measures *every* backend
//! in-process (they are called directly, not through the env-selected
//! global), so a single run records the scalar-vs-blocked-vs-wide-vs-auto
//! speedups and lets `bench_report` gate `auto` against the best single
//! backend per shape; the end-to-end section runs under whatever
//! `CREATE_F32_BACKEND` selected (recorded per record) — CI runs it
//! under several values — and measures the persistent worker pool
//! against the old spawn-per-chunk fan-out at 1, 2 and 4 workers.

use create_agents::presets::{ControllerPreset, PlannerPreset};
use create_agents::{
    datasets, vocab, ControllerModel, ControllerTrainScratch, PlannerModel, PlannerTrainScratch,
};
use create_bench::{banner, emit_bench_json, measure_ns_per_iter, BenchRecord, Stopwatch};
use create_env::TaskId;
use create_tensor::{FloatBackendKind, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

/// Testbed shapes drawn from the proxy training loops (d = 32, MLP = 64,
/// planner sequences up to `MAX_SEQ`, controller 4-token sequences, the
/// one-hot view featurizer, and the vocab-wide head).
fn training_shapes() -> Vec<(&'static str, usize, usize, usize)> {
    let t = vocab::MAX_SEQ; // longest planner teacher-forcing sequence
    let v = vocab::VOCAB;
    vec![
        ("block_proj", t, 32, 32),   // x @ wq/wk/wv/wo
        ("mlp_up", t, 32, 64),       // x @ wgate/wup (and fc1)
        ("mlp_down", t, 64, 32),     // prod @ wdown (and fc2)
        ("head", t, 32, v),          // normed @ head.w
        ("ctrl_tokens", 4, 32, 32),  // controller 4-token block GEMMs
        ("view_onehot", 1, 686, 32), // one-hot view featurizer (sparse)
    ]
}

fn dense(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::random_uniform(rows, cols, 1.0, rng)
}

/// ~1-hot-per-49-cells sparse input, matching `view_one_hot`'s density —
/// this is where the reference's zero-skip (preserved bit-exactly by the
/// blocked backend) pays off.
fn sparse_rowlike(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.random_range(0.0f32..1.0) < 0.07 {
            1.0
        } else {
            0.0
        }
    })
}

fn bench_f32_gemms(records: &mut Vec<BenchRecord>) {
    banner(
        "train/gemm",
        "f32 training GEMMs, scalar vs blocked vs wide",
    );
    let mut rng = StdRng::seed_from_u64(11);
    for (label, m, k, n) in training_shapes() {
        let a = if label == "view_onehot" {
            sparse_rowlike(m, k, &mut rng)
        } else {
            dense(m, k, &mut rng)
        };
        let b = dense(k, n, &mut rng);
        let bt = dense(n, k, &mut rng);
        let c = dense(m, n, &mut rng);
        let flops = 2.0 * (m * k * n) as f64;
        let mut out = Matrix::default();
        let mut per_backend: Vec<(FloatBackendKind, [f64; 3])> = Vec::new();
        for kind in FloatBackendKind::ALL {
            let backend = kind.backend();
            // Forward product, input-gradient product, weight-gradient
            // product — the three GEMMs every training layer performs.
            let nn = measure_ns_per_iter(|| {
                backend.matmul_into(black_box(&a), black_box(&b), &mut out);
                black_box(out.len());
            });
            let nt = measure_ns_per_iter(|| {
                backend.matmul_nt_into(black_box(&a), black_box(&bt), &mut out);
                black_box(out.len());
            });
            let tn = measure_ns_per_iter(|| {
                backend.matmul_tn_into(black_box(&a), black_box(&c), &mut out);
                black_box(out.len());
            });
            for (op, ns) in [("matmul", nn), ("matmul_nt", nt), ("matmul_tn", tn)] {
                records.push(
                    BenchRecord::new()
                        .str("bench", "f32_gemm")
                        .str("op", op)
                        .str("site", label)
                        .str("shape", format!("{m}x{k}x{n}"))
                        .str("backend", kind.name())
                        .num("ns_per_iter", ns)
                        .num("gflops", flops / ns),
                );
            }
            per_backend.push((kind, [nn, nt, tn]));
        }
        if let Some((_, scalar)) = per_backend.first() {
            for (kind, ns) in &per_backend[1..] {
                println!(
                    "  {label:<12} {m}x{k}x{n} {kind:>8}: speedup nn {:.2}x  nt {:.2}x  tn {:.2}x",
                    scalar[0] / ns[0],
                    scalar[1] / ns[1],
                    scalar[2] / ns[2],
                );
            }
        }
    }
}

/// The worker counts the end-to-end section measures: sequential, plus
/// the data-parallel pool at 2 and 4 workers. On a single-core box the
/// extra worker counts measure the coordination overhead honestly;
/// results are bit-identical at every count by contract.
const TRAIN_THREADS: [usize; 3] = [1, 2, 4];

/// The chunk-fan-out strategies measured head-to-head: the persistent
/// condvar-parked [`WorkerPool`](create_tensor::par::WorkerPool) that
/// `train_with_threads` now uses, and the pre-pool
/// [`SpawnPerChunk`](create_tensor::par::SpawnPerChunk) behaviour it
/// replaced. `bench_report` gates pool ≥ spawn at 4 workers.
const TRAIN_MODES: [&str; 2] = ["pool", "spawn"];

/// Times `epochs` epochs of a training closure after a 1-epoch warm-up,
/// recording seconds/epoch and epochs/s.
fn timed_epochs(
    records: &mut Vec<BenchRecord>,
    name: &str,
    mode: &str,
    threads: usize,
    samples: u64,
    epochs: usize,
    mut run_epochs: impl FnMut(usize),
) {
    run_epochs(1); // warm-up: JIT-free, but warms buffers and caches
    let start = Instant::now();
    run_epochs(epochs);
    let elapsed = start.elapsed().as_secs_f64();
    let backend = FloatBackendKind::from_env().name();
    println!(
        "  {name}: {:.3} s/epoch ({:.2} epochs/s) on the `{backend}` backend, \
         {threads} worker(s), {mode} fan-out",
        elapsed / epochs as f64,
        epochs as f64 / elapsed,
    );
    records.push(
        BenchRecord::new()
            .str("bench", name)
            .str("backend", backend)
            .str("mode", mode)
            .int("threads", threads as u64)
            .int("samples", samples)
            .int("epochs", epochs as u64)
            .num("s_per_epoch", elapsed / epochs as f64)
            .num("epochs_per_s", epochs as f64 / elapsed),
    );
}

fn bench_training_throughput(records: &mut Vec<BenchRecord>) {
    banner(
        "train/e2e",
        "planner + controller training throughput at testbed shapes",
    );
    // Planner: the tiny 2-layer testbed over the 3-task sample subset the
    // unit tests train on.
    let preset = PlannerPreset {
        proxy_layers: 2,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..PlannerPreset::jarvis()
    };
    let samples: Vec<_> = vocab::training_samples()
        .into_iter()
        .filter(|s| {
            [TaskId::Wooden, TaskId::Log, TaskId::Button]
                .iter()
                .any(|&t| s.tokens[0] == vocab::task_token(t))
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(5);
    let mut planner = PlannerModel::new(&preset, &mut rng);
    let mut p_scratch = PlannerTrainScratch::default();
    let n = samples.len() as u64;
    for threads in TRAIN_THREADS {
        for mode in TRAIN_MODES {
            timed_epochs(records, "train_planner", mode, threads, n, 40, |epochs| {
                // "pool" is the production path (train_with_threads spawns
                // one persistent pool per call); "spawn" replays the
                // pre-pool per-chunk thread churn for comparison.
                if mode == "pool" {
                    let _ = planner.train_with_threads(
                        &samples,
                        epochs,
                        3e-3,
                        None,
                        &mut rng,
                        threads,
                        &mut p_scratch,
                    );
                } else {
                    let mut spawn = create_tensor::par::SpawnPerChunk(threads);
                    let _ = planner.train_with_mapper(
                        &samples,
                        epochs,
                        3e-3,
                        None,
                        &mut rng,
                        &mut spawn,
                        &mut p_scratch,
                    );
                }
            });
        }
    }

    // Controller: behaviour cloning on a 2-task expert set.
    let c_preset = ControllerPreset {
        proxy_layers: 1,
        proxy_hidden: 32,
        proxy_mlp: 64,
        proxy_heads: 4,
        ..ControllerPreset::jarvis()
    };
    let bc = datasets::collect_bc(&[TaskId::Log, TaskId::Seed], 2, 300, 0.05, 3);
    let mut controller = ControllerModel::new(&c_preset, &mut rng);
    let mut c_scratch = ControllerTrainScratch::default();
    let n = bc.len() as u64;
    for threads in TRAIN_THREADS {
        for mode in TRAIN_MODES {
            timed_epochs(records, "train_controller", mode, threads, n, 4, |epochs| {
                if mode == "pool" {
                    let _ = controller.train_with_threads(
                        &bc,
                        epochs,
                        2e-3,
                        &mut rng,
                        threads,
                        &mut c_scratch,
                    );
                } else {
                    let mut spawn = create_tensor::par::SpawnPerChunk(threads);
                    let _ = controller.train_with_mapper(
                        &bc,
                        epochs,
                        2e-3,
                        &mut rng,
                        &mut spawn,
                        &mut c_scratch,
                    );
                }
            });
        }
    }
}

fn main() {
    let _t = Stopwatch::start("train");
    let mut records = Vec::new();
    bench_f32_gemms(&mut records);
    bench_training_throughput(&mut records);
    emit_bench_json("train", &records);
}
