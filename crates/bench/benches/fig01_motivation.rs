//! Fig. 1(b)–(d): the motivation study. Lowering supply voltage raises the
//! bit error rate (b), which degrades task success and inflates execution
//! steps (c), which ultimately *increases* energy per task (d) — the
//! efficiency-reliability tension CREATE resolves.

use create_accel::TimingModel;
use create_bench::{banner, emit, jarvis_deployment, LabeledGrid, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("fig01");
    let timing = TimingModel::new();

    banner("Fig. 1(b)", "operating voltage vs bit error rate");
    let mut t = TextTable::new(vec!["voltage_v", "ber"]);
    let mut v = 0.90;
    while v > 0.759 {
        t.row(vec![
            format!("{v:.2}"),
            format!("{:.2e}", timing.aggregate_ber(v)),
        ]);
        v -= 0.01;
    }
    emit(&t, "fig01b_voltage_ber");

    banner(
        "Fig. 1(c)(d)",
        "task quality and per-task energy vs voltage (stone, unprotected)",
    );
    let dep = jarvis_deployment();
    let reps = default_reps();
    let mut t = TextTable::new(vec!["voltage_v", "success_rate", "avg_steps", "energy_j"]);
    let mut grid = LabeledGrid::new();
    for v in [0.90, 0.88, 0.87, 0.86, 0.85, 0.84, 0.82] {
        grid.push(
            vec![format!("{v:.2}")],
            TaskId::Stone,
            CreateConfig::undervolted(v),
        );
    }
    for (label, p) in grid.run(&dep, reps, 0x01) {
        let mut row = label;
        row.extend([
            pct(p.success_rate),
            format!("{:.0}", p.avg_steps),
            format!("{:.2}", p.avg_energy_j),
        ]);
        t.row(row);
    }
    emit(&t, "fig01cd_quality_energy");
    println!(
        "Expected shape: success falls and steps/energy rise as voltage drops\n\
         below the planner's unprotected margin (~0.87 V)."
    );
}
