//! Fig. 1(b)–(d): the motivation study. Lowering supply voltage raises the
//! bit error rate (b), which degrades task success and inflates execution
//! steps (c), which ultimately *increases* energy per task (d) — the
//! efficiency-reliability tension CREATE resolves.

use create_accel::TimingModel;
use create_bench::{
    banner, emit, emit_bench_json, jarvis_deployment, BenchRecord, LabeledGrid, Stopwatch,
};
use create_core::prelude::*;
use create_env::TaskId;
use std::time::Instant;

fn main() {
    let _t = Stopwatch::start("fig01");
    let timing = TimingModel::new();

    banner("Fig. 1(b)", "operating voltage vs bit error rate");
    let mut t = TextTable::new(vec!["voltage_v", "ber"]);
    let mut v = 0.90;
    while v > 0.759 {
        t.row(vec![
            format!("{v:.2}"),
            format!("{:.2e}", timing.aggregate_ber(v)),
        ]);
        v -= 0.01;
    }
    emit(&t, "fig01b_voltage_ber");

    banner(
        "Fig. 1(c)(d)",
        "task quality and per-task energy vs voltage (stone, unprotected)",
    );
    let dep = jarvis_deployment();
    let reps = default_reps();
    let mut t = TextTable::new(vec!["voltage_v", "success_rate", "avg_steps", "energy_j"]);
    let mut grid = LabeledGrid::new();
    let voltages = [0.90, 0.88, 0.87, 0.86, 0.85, 0.84, 0.82];
    for v in voltages {
        grid.push(
            vec![format!("{v:.2}")],
            TaskId::Stone,
            CreateConfig::undervolted(v),
        );
    }
    let cells = voltages.len() as u64;
    let sweep_start = Instant::now();
    let points = grid.run(&dep, reps, 0x01);
    let sweep_elapsed = sweep_start.elapsed().as_secs_f64();
    let mut total_steps = 0u64;
    for (label, p) in points {
        let mut row = label;
        row.extend([
            pct(p.success_rate),
            format!("{:.0}", p.avg_steps),
            format!("{:.2}", p.avg_energy_j),
        ]);
        t.row(row);
        total_steps += (p.avg_steps * p.n as f64) as u64;
    }
    emit(&t, "fig01cd_quality_energy");
    // Machine-readable end-to-end numbers: the voltage sweep is the PR's
    // canonical mission workload, so its throughput is the trajectory
    // future perf PRs compare against.
    let trials = cells * reps as u64;
    emit_bench_json(
        "fig01",
        &[BenchRecord::new()
            .str("bench", "fig01_voltage_sweep")
            .str("backend", create_accel::GemmBackendKind::from_env().name())
            .int("cells", cells)
            .int("reps", reps as u64)
            .int("trials", trials)
            // Measured outcome, not configuration: emit as a float so it
            // stays out of `record_key` and a behavior change cannot
            // silently unmatch this record from its committed baseline.
            .num("approx_success_steps", total_steps as f64)
            .num("elapsed_s", sweep_elapsed)
            .num("trials_per_s", trials as f64 / sweep_elapsed.max(1e-9))],
    );
    println!(
        "Expected shape: success falls and steps/energy rise as voltage drops\n\
         below the planner's unprotected margin (~0.87 V)."
    );
}
