//! Fig. 4: the timing-error model. (a) Per-bit timing error rate under
//! different voltages — higher accumulator bits (longer carry chains) fail
//! first and most often. (b) The error-magnitude pattern at 0.85 V
//! overlaps the top of the runtime activation range: high-bit flips land
//! far outside normal data, which is what anomaly detection exploits.

use create_accel::inject::flip_acc_bit;
use create_accel::timing::{TimingModel, ACC_BITS};
use create_bench::{banner, emit, Stopwatch};
use create_core::prelude::*;
use create_tensor::stats::Histogram;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let _t = Stopwatch::start("fig04");
    let timing = TimingModel::new();

    banner("Fig. 4(a)", "per-bit timing error rate vs voltage");
    let voltages = [0.88, 0.86, 0.85, 0.82, 0.78, 0.70];
    let mut header = vec!["bit".to_string()];
    header.extend(voltages.iter().map(|v| format!("{v:.2}V")));
    let mut t = TextTable::new(header);
    let probs: Vec<[f64; ACC_BITS]> = voltages
        .iter()
        .map(|&v| timing.bit_error_probs(v))
        .collect();
    for bit in (0..ACC_BITS).rev() {
        let mut row = vec![bit.to_string()];
        for p in &probs {
            row.push(format!("{:.1e}", p[bit]));
        }
        t.row(row);
    }
    emit(&t, "fig04a_bit_error_rates");
    for &v in &voltages {
        println!(
            "  {v:.2} V: first violating bit = {:>2}, aggregate BER = {:.1e}",
            timing.first_violating_bit(v),
            timing.aggregate_ber(v)
        );
    }

    banner(
        "Fig. 4(b)",
        "error magnitude vs runtime data range at 0.85 V",
    );
    // Sample accumulator values from a realistic GEMM output distribution
    // (Laplace-like, scale ~200 accumulator LSBs), then apply flips drawn
    // from the 0.85 V bit distribution and histogram |corrupted|.
    let mut rng = StdRng::seed_from_u64(0x45);
    let bit_probs = timing.bit_error_probs(0.85);
    let total: f64 = bit_probs.iter().sum();
    let mut data_hist = Histogram::new(0.0, 24.0, 24);
    let mut error_hist = Histogram::new(0.0, 24.0, 24);
    for _ in 0..200_000 {
        let u: f64 = rng.random_range(1e-12..1.0);
        let magnitude = (-u.ln() * 200.0) as i32;
        let value = if rng.random_range(0.0..1.0) < 0.5 {
            magnitude
        } else {
            -magnitude
        };
        data_hist.push((value.unsigned_abs().max(1) as f32).log2());
        // Draw a flipped bit from the voltage-conditioned distribution.
        let mut r = rng.random_range(0.0..total);
        let mut bit = ACC_BITS - 1;
        for (b, &p) in bit_probs.iter().enumerate() {
            if r < p {
                bit = b;
                break;
            }
            r -= p;
        }
        let corrupted = flip_acc_bit(value, bit as u32);
        error_hist.push((corrupted.unsigned_abs().max(1) as f32).log2());
    }
    let mut t = TextTable::new(vec!["log2_magnitude", "runtime_data", "corrupted_values"]);
    for i in 0..24 {
        t.row(vec![
            format!("{:.0}", data_hist.bin_center(i)),
            data_hist.bins()[i].to_string(),
            error_hist.bins()[i].to_string(),
        ]);
    }
    emit(&t, "fig04b_error_pattern");
    println!(
        "Expected shape: runtime data concentrates below ~2^12 while corrupted\n\
         values cluster near 2^20..2^23 — far outside the valid range."
    );
}
