//! Fig. 13 (+ Fig. 21): evaluation of the three CREATE techniques.
//!
//! (a) AD on the planner and (b) on the controller (uniform-BER sweeps);
//! (c) WR on the planner; (d) autonomy-adaptive VS policies A–F against
//! constant-voltage baselines; (e) the AD+WR ablation; (f) the AD+VS
//! ablation. Fig. 21's entropy→voltage mappings are printed alongside (d).

use create_bench::{banner, emit, jarvis_deployment, LabeledGrid, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("fig13");
    let dep = jarvis_deployment();
    let reps = default_reps();
    let tasks = [TaskId::Wooden, TaskId::Stone];

    // ---------------------------------------------------------- (a) (c) (e)
    banner(
        "Fig. 13(a)(c)(e)",
        "planner protection: none / AD / WR / AD+WR (uniform BER)",
    );
    let planner_bers = [1e-8, 1e-7, 1e-6, 2e-6, 1e-5];
    let mut t = TextTable::new(vec!["task", "ber", "config", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for &task in &tasks {
        for &ber in &planner_bers {
            for (name, ad, wr) in [
                ("none", false, false),
                ("WR", false, true),
                ("AD", true, false),
                ("AD+WR", true, true),
            ] {
                let config = CreateConfig {
                    planner_error: Some(ErrorSpec::uniform(ber)),
                    planner_ad: ad,
                    wr,
                    ..CreateConfig::golden()
                };
                grid.push(
                    vec![task.to_string(), sci(ber), name.to_string()],
                    task,
                    config,
                );
            }
        }
    }
    for (label, p) in grid.run(&dep, reps, 0x13A) {
        let mut row = label;
        row.extend([pct(p.success_rate), format!("{:.0}", p.avg_steps)]);
        t.row(row);
    }
    emit(&t, "fig13ace_planner_protection");

    // ------------------------------------------------------------------ (b)
    banner(
        "Fig. 13(b)",
        "controller protection: none vs AD (uniform BER)",
    );
    let controller_bers = [1e-4, 4e-4, 1e-3, 5e-3, 1e-2];
    let mut t = TextTable::new(vec!["task", "ber", "config", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for &task in &tasks {
        for &ber in &controller_bers {
            for (name, ad) in [("none", false), ("AD", true)] {
                let config = CreateConfig {
                    controller_error: Some(ErrorSpec::uniform(ber)),
                    controller_ad: ad,
                    ..CreateConfig::golden()
                };
                grid.push(
                    vec![task.to_string(), sci(ber), name.to_string()],
                    task,
                    config,
                );
            }
        }
    }
    for (label, p) in grid.run(&dep, reps, 0x13B) {
        let mut row = label;
        row.extend([pct(p.success_rate), format!("{:.0}", p.avg_steps)]);
        t.row(row);
    }
    emit(&t, "fig13b_controller_ad");

    // ------------------------------------------------------------- Fig. 21
    banner("Fig. 21", "entropy-to-voltage mapping policies A-F");
    for p in EntropyPolicy::presets() {
        println!("  {p}");
    }

    // -------------------------------------------------------------- (d) (f)
    banner(
        "Fig. 13(d)(f)",
        "VS policies vs constant voltage (hardware error model on controller)",
    );
    let mut t = TextTable::new(vec![
        "task",
        "config",
        "ad",
        "effective_v",
        "success_rate",
        "energy_j",
    ]);
    let mut grid = LabeledGrid::new();
    for &task in &tasks {
        for ad in [false, true] {
            for v in [0.86, 0.84, 0.82, 0.80, 0.78] {
                let config = CreateConfig {
                    controller_error: Some(ErrorSpec::voltage()),
                    controller_ad: ad,
                    voltage: VoltageControl::Fixed(v),
                    ..CreateConfig::golden()
                };
                grid.push(
                    vec![task.to_string(), format!("const {v:.2}V"), ad.to_string()],
                    task,
                    config,
                );
            }
            for policy in EntropyPolicy::presets() {
                let name = format!("policy {}", policy.name());
                let config = CreateConfig {
                    controller_error: Some(ErrorSpec::voltage()),
                    controller_ad: ad,
                    voltage: VoltageControl::adaptive(policy),
                    ..CreateConfig::golden()
                };
                grid.push(vec![task.to_string(), name, ad.to_string()], task, config);
            }
        }
    }
    for (label, p) in grid.run(&dep, reps, 0x13D) {
        let mut row = label;
        row.extend([
            format!("{:.3}", p.effective_voltage),
            pct(p.success_rate),
            format!("{:.2}", p.avg_energy_j),
        ]);
        t.row(row);
    }
    emit(&t, "fig13df_voltage_scaling");
    println!(
        "Expected shape: adaptive policies sit left of (lower effective voltage\n\
         than) constant-voltage points at equal success rate, and pairing VS\n\
         with AD shifts the whole frontier further left (Fig. 13f's arrows)."
    );
}
