//! Fig. 5: the resilience characterization (Sec. 4).
//!
//! (a)–(d): planner vs controller success rate and average steps under a
//! uniform-BER sweep — the planner plunges around 2e-8 while the
//! controller holds until ~1e-4 (Insight 1).
//!
//! (e)–(h): per-component injection — the planner's pre-normalization
//! components (O) are markedly more fragile than K, while the controller
//! shows only minor variation (Insight 2).
//!
//! (i)–(l): activation distributions and the effect of a single large
//! error on normalization statistics — the planner's systematic outliers
//! make its μ/σ skew drastically, the controller's stay moderate.

use create_accel::{Accelerator, Component, InjectionTarget};
use create_agents::vocab;
use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::{TaskId, World};
use create_nn::block::ActivationTap;
use create_nn::norm::{layernorm_with_stats, rmsnorm_with_stats};
use create_tensor::stats::{mean, std_dev};
use create_tensor::Matrix;

fn sweep(
    dep: &Deployment,
    task: TaskId,
    unit_is_planner: bool,
    target: InjectionTarget,
    bers: &[f64],
    reps: u32,
    seed: u64,
) -> Vec<(f64, SweepPoint)> {
    // One engine grid per sweep: every trial of every BER fans out over
    // the same worker pool.
    let cells = bers.iter().map(|&ber| {
        let mut spec = ErrorSpec::uniform(ber);
        spec.target = target;
        let config = if unit_is_planner {
            CreateConfig {
                planner_error: Some(spec),
                ..CreateConfig::golden()
            }
        } else {
            CreateConfig {
                controller_error: Some(spec),
                ..CreateConfig::golden()
            }
        };
        (task, config)
    });
    bers.iter()
        .copied()
        .zip(run_config_grid(dep, cells, reps, seed))
        .collect()
}

fn main() {
    let _t = Stopwatch::start("fig05");
    let dep = jarvis_deployment();
    let reps = default_reps();

    banner("Fig. 5(a)(b)", "planner resilience (controller golden)");
    let planner_bers = [1e-9, 1e-8, 2e-8, 5e-8, 1e-7, 3e-7, 1e-6];
    let mut t = TextTable::new(vec![
        "ber",
        "task",
        "success_rate",
        "avg_steps",
        "ci_low",
        "ci_high",
    ]);
    for task in [TaskId::Wooden, TaskId::Stone] {
        for (ber, p) in sweep(
            &dep,
            task,
            true,
            InjectionTarget::All,
            &planner_bers,
            reps,
            0x5A,
        ) {
            t.row(vec![
                sci(ber),
                task.to_string(),
                pct(p.success_rate),
                format!("{:.0}", p.avg_steps),
                pct(p.ci.0),
                pct(p.ci.1),
            ]);
        }
    }
    emit(&t, "fig05ab_planner_resilience");

    banner("Fig. 5(c)(d)", "controller resilience (planner golden)");
    let controller_bers = [1e-6, 1e-5, 1e-4, 2e-4, 4e-4, 1e-3, 1e-2];
    let mut t = TextTable::new(vec![
        "ber",
        "task",
        "success_rate",
        "avg_steps",
        "ci_low",
        "ci_high",
    ]);
    for task in [TaskId::Wooden, TaskId::Stone] {
        for (ber, p) in sweep(
            &dep,
            task,
            false,
            InjectionTarget::All,
            &controller_bers,
            reps,
            0x5B,
        ) {
            t.row(vec![
                sci(ber),
                task.to_string(),
                pct(p.success_rate),
                format!("{:.0}", p.avg_steps),
                pct(p.ci.0),
                pct(p.ci.1),
            ]);
        }
    }
    emit(&t, "fig05cd_controller_resilience");

    banner("Fig. 5(e)(f)", "planner components: K vs O (wooden)");
    let mut t = TextTable::new(vec!["ber", "component", "success_rate", "avg_steps"]);
    for comp in [Component::K, Component::O] {
        for (ber, p) in sweep(
            &dep,
            TaskId::Wooden,
            true,
            InjectionTarget::Component(comp),
            &[1e-8, 1e-7, 1e-6, 1e-5],
            reps,
            0x5C,
        ) {
            t.row(vec![
                sci(ber),
                comp.to_string(),
                pct(p.success_rate),
                format!("{:.0}", p.avg_steps),
            ]);
        }
    }
    emit(&t, "fig05ef_planner_components");

    banner("Fig. 5(g)(h)", "controller components: K vs O (wooden)");
    let mut t = TextTable::new(vec!["ber", "component", "success_rate", "avg_steps"]);
    for comp in [Component::K, Component::O] {
        for (ber, p) in sweep(
            &dep,
            TaskId::Wooden,
            false,
            InjectionTarget::Component(comp),
            &[1e-4, 1e-3, 1e-2],
            reps,
            0x5D,
        ) {
            t.row(vec![
                sci(ber),
                comp.to_string(),
                pct(p.success_rate),
                format!("{:.0}", p.avg_steps),
            ]);
        }
    }
    emit(&t, "fig05gh_controller_components");

    banner(
        "Fig. 5(i)-(l)",
        "activation distributions & normalization skew under one large error",
    );
    let mut accel = Accelerator::ideal(0);
    // Planner pre-norm activations on a representative decode context.
    let mut planner_tap = ActivationTap::default();
    let tokens = vocab::context_tokens(TaskId::Iron, &[]);
    let _ = dep
        .planner
        .last_logits(&mut accel, &tokens, Some(&mut planner_tap));
    // Controller pre-norm activations on a representative observation.
    let world = World::for_task(TaskId::Stone, 3);
    let obs = world.observe();
    let mut ctrl_tap = ActivationTap::default();
    let _ = dep.controller.logits(&mut accel, &obs, Some(&mut ctrl_tap));

    let mut t = TextTable::new(vec![
        "unit",
        "site",
        "mean",
        "std",
        "max_abs",
        "peak_to_rms",
    ]);
    let describe = |t: &mut TextTable, unit: &str, acts: &[Matrix]| {
        for (i, m) in acts.iter().enumerate() {
            let vals = m.as_slice();
            let rms = (vals.iter().map(|v| v * v).sum::<f32>() / vals.len() as f32).sqrt();
            t.row(vec![
                unit.to_string(),
                format!("block{i}"),
                format!("{:.2}", mean(vals)),
                format!("{:.2}", std_dev(vals)),
                format!("{:.2}", m.max_abs()),
                format!("{:.2}", m.max_abs() / rms.max(1e-6)),
            ]);
        }
    };
    describe(&mut t, "planner", &planner_tap.pre_norm);
    describe(&mut t, "controller", &ctrl_tap.pre_norm);
    emit(&t, "fig05ij_activations");

    // (k)(l): inject one large error into a pre-norm row and compare the
    // normalization statistics before/after.
    let mut t = TextTable::new(vec!["unit", "metric", "clean", "with_error", "skew_factor"]);
    let planner_x = planner_tap.pre_norm.last().expect("planner activations");
    let err_val = planner_x.max_abs() * 1.5;
    let row = planner_x.rows_range(0, 1);
    let (_, clean_stats) = rmsnorm_with_stats(&row);
    let mut corrupted = row.clone();
    corrupted.set(0, corrupted.cols() / 2, err_val);
    let (_, bad_stats) = rmsnorm_with_stats(&corrupted);
    t.row(vec![
        "planner".into(),
        "rms_denominator".into(),
        format!("{:.2}", clean_stats.denom[0]),
        format!("{:.2}", bad_stats.denom[0]),
        format!("{:.2}x", bad_stats.denom[0] / clean_stats.denom[0]),
    ]);
    let ctrl_x = ctrl_tap.pre_norm.last().expect("controller activations");
    let err_val = ctrl_x.max_abs() * 1.5;
    let row = ctrl_x.rows_range(0, 1);
    let (_, clean_stats) = layernorm_with_stats(&row);
    let mut corrupted = row.clone();
    corrupted.set(0, corrupted.cols() / 2, err_val);
    let (_, bad_stats) = layernorm_with_stats(&corrupted);
    t.row(vec![
        "controller".into(),
        "sigma_denominator".into(),
        format!("{:.2}", clean_stats.denom[0]),
        format!("{:.2}", bad_stats.denom[0]),
        format!("{:.2}x", bad_stats.denom[0] / clean_stats.denom[0]),
    ]);
    emit(&t, "fig05kl_norm_skew");
    println!(
        "Expected shape: the planner's outlier-dominated activations make an\n\
         in-range error skew the normalization denominator far more than the\n\
         controller's uniform activations do."
    );
}
