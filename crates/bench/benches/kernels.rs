//! Criterion microbenchmarks of the performance-critical kernels: the
//! INT8 systolic GEMM (per [`GemmBackendKind`], so scalar-vs-blocked
//! speedups are measured head-to-head on identical inputs), error
//! injection, anomaly detection (to quantify its "negligible overhead"
//! claim in software terms) and the fast Walsh–Hadamard transform used by
//! weight rotation.

use create_accel::ad;
use create_accel::ctx::{Component, LayerCtx, Unit};
use create_accel::ecc::Codeword;
use create_accel::gemm::GemmBackendKind;
use create_accel::inject::{ErrorModel, InjectionTarget, Injector};
use create_accel::sram::{MemoryFaultModel, Protection, SramBuffer};
use create_accel::{AccelConfig, Accelerator};
use create_bench::{emit_bench_json, measure_ns_per_iter, BenchRecord};
use create_tensor::hadamard::fwht_normalized;
use create_tensor::{Matrix, Precision, QuantMatrix, QuantParams};
use criterion::{criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

/// GEMM shapes measured head-to-head: the two PR-2 reference shapes plus
/// the *small* shapes that dominate mission traffic (the deployed
/// controller's per-step layers), where per-call overhead — allocation
/// before this PR — outweighs the arithmetic.
const GEMM_SHAPES: [(usize, usize, usize); 5] = [
    (16, 256, 256),
    (1, 512, 128),
    (4, 32, 32),
    (1, 64, 16),
    (4, 686, 32),
];

fn gemm_operands(m: usize, k: usize, n: usize, rng: &mut StdRng) -> (QuantMatrix, QuantMatrix) {
    let a = QuantMatrix::quantize(&Matrix::random_uniform(m, k, 1.0, rng), Precision::Int8);
    let w = QuantMatrix::quantize(&Matrix::random_uniform(k, n, 1.0, rng), Precision::Int8);
    (a, w)
}

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    for (m, k, n) in GEMM_SHAPES {
        let (a, w) = gemm_operands(m, k, n, &mut rng);
        for kind in GemmBackendKind::ALL {
            let backend = kind.instantiate();
            c.bench_function(&format!("gemm_i8_{m}x{k}x{n}/{kind}"), |b| {
                b.iter(|| black_box(backend.gemm_i8_acc(black_box(&a), black_box(&w))))
            });
            let mut acc = Vec::new();
            c.bench_function(&format!("gemm_i8_into_{m}x{k}x{n}/{kind}"), |b| {
                b.iter(|| {
                    backend.gemm_i8_acc_into(black_box(&a), black_box(&w), &mut acc);
                    black_box(acc.len())
                })
            });
        }
    }
}

fn bench_accel_linear(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let ctx = LayerCtx::new(Unit::Controller, Component::Fc1, 0);
    let params = QuantParams::from_max_abs(1.0, Precision::Int8);
    for (m, k, n) in [(4usize, 32usize, 32usize), (1, 64, 16)] {
        let x = Matrix::random_uniform(m, k, 1.0, &mut rng);
        let w = QuantMatrix::quantize(
            &Matrix::random_uniform(k, n, 0.5, &mut rng),
            Precision::Int8,
        );
        let mut accel = Accelerator::ideal(0);
        c.bench_function(&format!("accel_linear_{m}x{k}x{n}"), |b| {
            b.iter(|| black_box(accel.linear(&x, &w, params, 4.0, ctx)))
        });
        let mut out = Matrix::zeros(0, 0);
        c.bench_function(&format!("accel_linear_into_{m}x{k}x{n}"), |b| {
            b.iter(|| {
                accel.linear_into(&x, &w, params, 4.0, ctx, &mut out);
                black_box(out.rows())
            })
        });
    }
}

/// Machine-readable companion to the printed numbers: measures the hot
/// kernels with a fixed-cost timer and writes
/// `results/BENCH_kernels.json` so future PRs have a perf trajectory to
/// compare against.
fn emit_kernels_json() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut records = Vec::new();
    for (m, k, n) in GEMM_SHAPES {
        let (a, w) = gemm_operands(m, k, n, &mut rng);
        let macs = (m * k * n) as u64;
        for kind in GemmBackendKind::ALL {
            let backend = kind.instantiate();
            let ns = measure_ns_per_iter(|| {
                black_box(backend.gemm_i8_acc(black_box(&a), black_box(&w)));
            });
            let mut acc = Vec::new();
            let ns_into = measure_ns_per_iter(|| {
                backend.gemm_i8_acc_into(black_box(&a), black_box(&w), &mut acc);
                black_box(acc.len());
            });
            for (bench, ns) in [("gemm_i8", ns), ("gemm_i8_into", ns_into)] {
                records.push(
                    BenchRecord::new()
                        .str("bench", bench)
                        .str("shape", format!("{m}x{k}x{n}"))
                        .str("backend", kind.name())
                        .num("ns_per_iter", ns)
                        .int("macs", macs)
                        .num("macs_per_s", macs as f64 / (ns * 1e-9)),
                );
            }
        }
    }
    // The full datapath (quantize → GEMM → dequant → clamp) through the
    // accelerator facade, allocating vs buffer-out, on the small shapes
    // where the zero-allocation steady state matters most.
    let ctx = LayerCtx::new(Unit::Controller, Component::Fc1, 0);
    let params = QuantParams::from_max_abs(1.0, Precision::Int8);
    for (m, k, n) in GEMM_SHAPES {
        let x = Matrix::random_uniform(m, k, 1.0, &mut rng);
        let w = QuantMatrix::quantize(
            &Matrix::random_uniform(k, n, 0.5, &mut rng),
            Precision::Int8,
        );
        let macs = (m * k * n) as u64;
        let mut accel = Accelerator::new(AccelConfig::default(), 0);
        let ns = measure_ns_per_iter(|| {
            black_box(accel.linear(&x, &w, params, 4.0, ctx));
        });
        let mut out = Matrix::zeros(0, 0);
        let ns_into = measure_ns_per_iter(|| {
            accel.linear_into(&x, &w, params, 4.0, ctx, &mut out);
            black_box(out.rows());
        });
        for (bench, ns) in [("accel_linear", ns), ("accel_linear_into", ns_into)] {
            records.push(
                BenchRecord::new()
                    .str("bench", bench)
                    .str("shape", format!("{m}x{k}x{n}"))
                    .str("backend", accel.backend_name())
                    .num("ns_per_iter", ns)
                    .int("macs", macs)
                    .num("macs_per_s", macs as f64 / (ns * 1e-9)),
            );
        }
    }
    emit_bench_json("kernels", &records);
}

fn bench_injection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let injector = Injector::new(
        ErrorModel::Uniform { ber: 1e-5 },
        InjectionTarget::All,
        100.0,
    );
    let ctx = LayerCtx::new(Unit::Controller, Component::Fc1, 0);
    let base = vec![12345i32; 4096];
    c.bench_function("inject_sparse_4096", |b| {
        b.iter(|| {
            let mut acc = base.clone();
            black_box(injector.inject(&mut acc, ctx, 0.9, &mut rng))
        })
    });
}

fn bench_anomaly_detection(c: &mut Criterion) {
    let acc: Vec<i32> = (0..4096).map(|i| (i * 37) % 4000 - 2000).collect();
    c.bench_function("ad_clear_4096", |b| {
        b.iter(|| {
            let mut buf = acc.clone();
            black_box(ad::clear_anomalies(&mut buf, 1_900))
        })
    });
}

fn bench_hadamard(c: &mut Criterion) {
    let data: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
    c.bench_function("fwht_64", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            fwht_normalized(&mut buf);
            black_box(buf)
        })
    });
}

fn bench_secded(c: &mut Criterion) {
    c.bench_function("secded_encode_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(Codeword::encode(black_box(i)))
        })
    });
    let cw = Codeword::encode(0xDEAD_BEEF_0BAD_F00D).with_flipped_bit(17);
    c.bench_function("secded_decode_corrected", |b| {
        b.iter(|| black_box(black_box(cw).decode()))
    });
}

fn bench_sram_snapshot(c: &mut Criterion) {
    let data: Vec<i8> = (0..16_384)
        .map(|i| ((i * 37 + 11) % 255) as u8 as i8)
        .collect();
    let buf = SramBuffer::store(&data, Protection::Secded, MemoryFaultModel::new());
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("sram_snapshot_secded_16k_0p72v", |b| {
        b.iter(|| black_box(buf.snapshot(0.72, &mut rng)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_accel_linear, bench_injection, bench_anomaly_detection,
        bench_hadamard, bench_secded, bench_sram_snapshot
}

fn main() {
    kernels();
    emit_kernels_json();
}
