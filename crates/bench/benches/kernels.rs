//! Criterion microbenchmarks of the performance-critical kernels: the
//! INT8 systolic GEMM (per [`GemmBackendKind`], so scalar-vs-blocked
//! speedups are measured head-to-head on identical inputs), error
//! injection, anomaly detection (to quantify its "negligible overhead"
//! claim in software terms) and the fast Walsh–Hadamard transform used by
//! weight rotation.

use create_accel::ad;
use create_accel::ctx::{Component, LayerCtx, Unit};
use create_accel::ecc::Codeword;
use create_accel::gemm::GemmBackendKind;
use create_accel::inject::{ErrorModel, InjectionTarget, Injector};
use create_accel::sram::{MemoryFaultModel, Protection, SramBuffer};
use create_tensor::hadamard::fwht_normalized;
use create_tensor::{Matrix, Precision, QuantMatrix};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    for (m, k, n) in [(16usize, 256usize, 256usize), (1, 512, 128)] {
        let a = QuantMatrix::quantize(
            &Matrix::random_uniform(m, k, 1.0, &mut rng),
            Precision::Int8,
        );
        let w = QuantMatrix::quantize(
            &Matrix::random_uniform(k, n, 1.0, &mut rng),
            Precision::Int8,
        );
        for kind in GemmBackendKind::ALL {
            let backend = kind.instantiate();
            c.bench_function(&format!("gemm_i8_{m}x{k}x{n}/{kind}"), |b| {
                b.iter(|| black_box(backend.gemm_i8_acc(black_box(&a), black_box(&w))))
            });
        }
    }
}

fn bench_injection(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let injector = Injector::new(
        ErrorModel::Uniform { ber: 1e-5 },
        InjectionTarget::All,
        100.0,
    );
    let ctx = LayerCtx::new(Unit::Controller, Component::Fc1, 0);
    let base = vec![12345i32; 4096];
    c.bench_function("inject_sparse_4096", |b| {
        b.iter(|| {
            let mut acc = base.clone();
            black_box(injector.inject(&mut acc, ctx, 0.9, &mut rng))
        })
    });
}

fn bench_anomaly_detection(c: &mut Criterion) {
    let acc: Vec<i32> = (0..4096).map(|i| (i * 37) % 4000 - 2000).collect();
    c.bench_function("ad_clear_4096", |b| {
        b.iter(|| {
            let mut buf = acc.clone();
            black_box(ad::clear_anomalies(&mut buf, 1_900))
        })
    });
}

fn bench_hadamard(c: &mut Criterion) {
    let data: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
    c.bench_function("fwht_64", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            fwht_normalized(&mut buf);
            black_box(buf)
        })
    });
}

fn bench_secded(c: &mut Criterion) {
    c.bench_function("secded_encode_u64", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            black_box(Codeword::encode(black_box(i)))
        })
    });
    let cw = Codeword::encode(0xDEAD_BEEF_0BAD_F00D).with_flipped_bit(17);
    c.bench_function("secded_decode_corrected", |b| {
        b.iter(|| black_box(black_box(cw).decode()))
    });
}

fn bench_sram_snapshot(c: &mut Criterion) {
    let data: Vec<i8> = (0..16_384)
        .map(|i| ((i * 37 + 11) % 255) as u8 as i8)
        .collect();
    let buf = SramBuffer::store(&data, Protection::Secded, MemoryFaultModel::new());
    let mut rng = StdRng::seed_from_u64(3);
    c.bench_function("sram_snapshot_secded_16k_0p72v", |b| {
        b.iter(|| black_box(buf.snapshot(0.72, &mut rng)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_injection, bench_anomaly_detection, bench_hadamard,
        bench_secded, bench_sram_snapshot
}
criterion_main!(kernels);
