//! Fig. 14: entropy-predictor accuracy. (a) Predicted vs actual entropy on
//! held-out mission frames (the paper reports R² = 0.92); (b) the predictor
//! tracking the golden entropy across a live mission, with the voltage the
//! default policy would command.

use create_agents::bundle::ACT_TEMPERATURE;
use create_agents::{datasets, AgentSystem};
use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::{Benchmark, TaskId};
use create_tensor::stats::r2_score;
use create_tensor::Precision;

fn main() {
    let _t = Stopwatch::start("fig14");
    let system = AgentSystem::jarvis();
    let dep = jarvis_deployment();

    banner(
        "Fig. 14(a)",
        "predicted vs actual entropy (held-out frames)",
    );
    // Held-out: different seeds than the training collection.
    let controller = system.deploy_controller(Precision::Int8);
    let tasks: Vec<TaskId> = TaskId::ALL
        .into_iter()
        .filter(|t| t.benchmark() == Benchmark::Minecraft)
        .collect();
    let samples = datasets::collect_entropy(&controller, &tasks, 1, 150, ACT_TEMPERATURE, 0xE7A1);
    let actual: Vec<f32> = samples.iter().map(|s| s.entropy).collect();
    let predicted: Vec<f32> = samples
        .iter()
        .map(|s| system.predictor.predict(&s.image, s.subtask_token))
        .collect();
    let r2 = r2_score(&actual, &predicted);
    let mut t = TextTable::new(vec!["actual", "predicted"]);
    for (a, p) in actual.iter().zip(&predicted).take(400) {
        t.row(vec![format!("{a:.3}"), format!("{p:.3}")]);
    }
    emit(&t, "fig14a_predictor_scatter");
    println!(
        "held-out frames: {}; R² = {r2:.3} (paper: 0.92)",
        samples.len()
    );

    banner("Fig. 14(b)", "real-time tracking and commanded voltage");
    let config = CreateConfig {
        voltage: VoltageControl::adaptive(EntropyPolicy::preset_c()),
        record_traces: true,
        ..CreateConfig::golden()
    };
    let out = MissionSession::new(&dep).run(TaskId::Stone, &config, 0xB14);
    let mut t = TextTable::new(vec!["step", "golden_entropy", "predicted", "voltage_v"]);
    for i in 0..out.entropy_trace.len() {
        let predicted = out
            .predicted_trace
            .get(i)
            .copied()
            .filter(|v| !v.is_nan())
            .map(|v| format!("{v:.3}"))
            .unwrap_or_else(|| "-".to_string());
        t.row(vec![
            i.to_string(),
            format!("{:.3}", out.entropy_trace[i]),
            predicted,
            format!("{:.2}", out.voltage_trace[i]),
        ]);
    }
    emit(&t, "fig14b_realtime_tracking");
    println!(
        "mission success: {}; steps: {}; LDO switches: {}",
        out.success, out.steps, out.ldo_switches
    );
}
