//! Fig. 19: validity of the characterization — the uniform error model
//! (Sec. 4) and the hardware voltage-derived model (Sec. 6) produce the
//! same resilience trends at matched aggregate BER, so the algorithmic
//! insights are independent of the specific error model.

use create_accel::TimingModel;
use create_bench::{banner, emit, jarvis_deployment, LabeledGrid, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("fig19");
    let dep = jarvis_deployment();
    let reps = default_reps();
    let timing = TimingModel::new();

    banner(
        "Fig. 19(a)",
        "planner: uniform vs hardware error model at matched BER (wooden)",
    );
    let mut t = TextTable::new(vec!["ber", "model", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for ber in [1e-8, 1e-7, 1e-6, 1e-5] {
        let uniform = CreateConfig {
            planner_error: Some(ErrorSpec::uniform(ber)),
            planner_ad: true,
            ..CreateConfig::golden()
        };
        grid.push(vec![sci(ber), "uniform".into()], TaskId::Wooden, uniform);
        let v = timing.voltage_for_ber(ber);
        let hw = CreateConfig {
            planner_error: Some(ErrorSpec::voltage()),
            planner_voltage: v,
            planner_ad: true,
            ..CreateConfig::golden()
        };
        grid.push(vec![sci(ber), format!("hw@{v:.3}V")], TaskId::Wooden, hw);
    }
    for (label, p) in grid.run(&dep, reps, 0x19) {
        let mut row = label;
        row.extend([pct(p.success_rate), format!("{:.0}", p.avg_steps)]);
        t.row(row);
    }
    emit(&t, "fig19a_planner_error_models");

    banner(
        "Fig. 19(b)",
        "controller: uniform vs hardware error model at matched BER (wooden)",
    );
    let mut t = TextTable::new(vec!["ber", "model", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for ber in [1e-5, 1e-4, 1e-3, 1e-2] {
        let uniform = CreateConfig {
            controller_error: Some(ErrorSpec::uniform(ber)),
            controller_ad: true,
            ..CreateConfig::golden()
        };
        grid.push(vec![sci(ber), "uniform".into()], TaskId::Wooden, uniform);
        let v = timing.voltage_for_ber(ber);
        let hw = CreateConfig {
            controller_error: Some(ErrorSpec::voltage()),
            controller_ad: true,
            voltage: VoltageControl::Fixed(v),
            ..CreateConfig::golden()
        };
        grid.push(vec![sci(ber), format!("hw@{v:.3}V")], TaskId::Wooden, hw);
    }
    for (label, p) in grid.run(&dep, reps, 0x19B) {
        let mut row = label;
        row.extend([pct(p.success_rate), format!("{:.0}", p.avg_steps)]);
        t.row(row);
    }
    emit(&t, "fig19b_controller_error_models");
    println!(
        "Expected shape: numbers differ slightly (the hardware model\n\
         concentrates flips in high bits, which AD clears preferentially)\n\
         but the trend and cliff locations agree."
    );
}
