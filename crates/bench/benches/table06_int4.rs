//! Table 6: quantization-related behaviour under AD+WR — INT8 vs INT4.
//!
//! Two panels, because the proxy and the reference differ in where INT4
//! is viable:
//!
//! * **(a) whole-system INT4** (the paper's configuration): the 64-dim
//!   proxy planner has no redundancy to spare and its error-free ceiling
//!   *collapses* at 4-bit codes — reported honestly; the paper's
//!   4096-dim planner does not have this problem.
//! * **(b) controller INT4** (mixed precision): the controller hosts
//!   INT4 fine at proxy scale, so the paper's actual claim — protected
//!   degradation under injected errors is statistically similar across
//!   precisions, because AD's tightened detection range compresses the
//!   undetected-error band — is evaluated there.

use create_agents::AgentSystem;
use create_bench::{banner, emit, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;
use create_tensor::Precision;
use std::sync::Arc;

fn main() {
    let _t = Stopwatch::start("table06");
    let system = AgentSystem::jarvis();
    let reps = default_reps();

    banner(
        "Table 6(a)",
        "whole-system precision on stone under AD+WR (proxy planner cannot host INT4)",
    );
    let mut t = TextTable::new(vec!["precision", "ber", "success_rate", "avg_steps"]);
    for precision in [Precision::Int8, Precision::Int4] {
        let dep = Deployment::new(&system, precision);
        for ber in [1e-8, 1e-7, 1e-6, 1e-5] {
            let config = CreateConfig {
                planner_error: Some(ErrorSpec::uniform(ber)),
                controller_error: Some(ErrorSpec::uniform(ber)),
                planner_ad: true,
                controller_ad: true,
                wr: true,
                precision,
                ..CreateConfig::golden()
            };
            let p = run_point(&dep, TaskId::Stone, &config, reps, 0x06);
            t.row(vec![
                format!("{precision:?}"),
                sci(ber),
                pct(p.success_rate),
                format!("{:.0}", p.avg_steps),
            ]);
        }
        // Error-free reference at this precision.
        let golden = run_point(
            &dep,
            TaskId::Stone,
            &CreateConfig {
                precision,
                ..CreateConfig::golden()
            },
            reps,
            0x06,
        );
        t.row(vec![
            format!("{precision:?}"),
            "0".into(),
            pct(golden.success_rate),
            format!("{:.0}", golden.avg_steps),
        ]);
    }
    emit(&t, "table06a_int4_system");

    banner(
        "Table 6(b)",
        "controller precision on stone (planner INT8 golden), controller errors + AD",
    );
    let mut t = TextTable::new(vec![
        "controller_precision",
        "ber",
        "success_rate",
        "avg_steps",
    ]);
    for precision in [Precision::Int8, Precision::Int4] {
        let mut dep = Deployment::new(&system, Precision::Int8);
        dep.controller = Arc::new(system.deploy_controller(precision));
        for ber in [0.0, 1e-4, 1e-3, 5e-3, 1e-2] {
            let config = CreateConfig {
                controller_error: (ber > 0.0).then(|| ErrorSpec::uniform(ber)),
                controller_ad: true,
                ..CreateConfig::golden()
            };
            let p = run_point(&dep, TaskId::Stone, &config, reps, 0x06B);
            t.row(vec![
                format!("{precision:?}"),
                if ber == 0.0 { "0".into() } else { sci(ber) },
                pct(p.success_rate),
                format!("{:.0}", p.avg_steps),
            ]);
        }
    }
    emit(&t, "table06b_int4_controller");
    println!(
        "Expected shape: (a) the proxy planner's INT4 ceiling collapses —\n\
         a proxy-scale artifact, reported honestly; (b) on the controller,\n\
         INT4's error-free ceiling matches INT8 and the protected\n\
         degradation tracks INT8 through BER 1e-3; at ~5e-3 INT4's thinner\n\
         margins give out a little earlier — the paper's claim holds over\n\
         the deployment-relevant BER range on the unit with redundancy to\n\
         spare."
    );
}
