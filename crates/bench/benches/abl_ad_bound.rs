//! Ablation — anomaly-detection bound tightness.
//!
//! DESIGN.md calls out that AD's power comes from *profiled* (not assumed)
//! output bounds: the comparator threshold is the largest |output| seen on
//! calibration data times a 1.25 margin. This target sweeps a multiplier
//! on that bound to show the deployed value sits at the optimum:
//!
//! * `×0.25–0.5` — the detector clips genuine activations, degrading task
//!   quality even with *no* errors injected;
//! * `×1` — the deployed profile: golden quality preserved, injected
//!   high-bit flips cleared;
//! * `×4–8` — large surviving errors pass the comparator and task quality
//!   decays toward the unprotected curve.
//!
//! This is also why weight rotation helps AD (Sec. 6.6): WR shrinks the
//! profiled max, which is equivalent to moving left along this sweep
//! without the golden-clipping penalty.

use create_bench::{banner, emit, jarvis_deployment, LabeledGrid, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

/// Shared row emitter for the three bound-scale panels.
fn emit_scale_rows(t: &mut TextTable, results: Vec<(Vec<String>, SweepPoint)>) {
    for (label, p) in results {
        let mut row = label;
        row.extend([pct(p.success_rate), format!("{:.0}", p.avg_steps)]);
        t.row(row);
    }
}

fn main() {
    let _t = Stopwatch::start("abl_ad_bound");
    let dep = jarvis_deployment();
    let reps = default_reps();
    let scales = [0.25f32, 0.5, 1.0, 2.0, 4.0, 8.0];

    banner(
        "Abl. AD(a)",
        "golden missions under scaled output bounds (wooden): tight bounds clip real data",
    );
    let mut t = TextTable::new(vec!["bound_scale", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for &scale in &scales {
        let config = CreateConfig {
            planner_ad: true,
            controller_ad: true,
            ad_bound_scale: scale,
            ..CreateConfig::golden()
        };
        grid.push(vec![format!("{scale:.2}x")], TaskId::Wooden, config);
    }
    emit_scale_rows(&mut t, grid.run(&dep, reps, 0xADB0));
    emit(&t, "abl_ad_bound_golden");

    banner(
        "Abl. AD(b)",
        "planner @BER 1e-6 under scaled bounds: loose bounds admit residual errors",
    );
    let mut t = TextTable::new(vec!["bound_scale", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for &scale in &scales {
        let config = CreateConfig {
            planner_error: Some(ErrorSpec::uniform(1e-6)),
            planner_ad: true,
            controller_ad: true,
            ad_bound_scale: scale,
            ..CreateConfig::golden()
        };
        grid.push(vec![format!("{scale:.2}x")], TaskId::Wooden, config);
    }
    emit_scale_rows(&mut t, grid.run(&dep, reps, 0xADB1));
    emit(&t, "abl_ad_bound_planner");

    banner("Abl. AD(c)", "controller @BER 5e-3 under scaled bounds");
    let mut t = TextTable::new(vec!["bound_scale", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for &scale in &scales {
        let config = CreateConfig {
            controller_error: Some(ErrorSpec::uniform(5e-3)),
            planner_ad: true,
            controller_ad: true,
            ad_bound_scale: scale,
            ..CreateConfig::golden()
        };
        grid.push(vec![format!("{scale:.2}x")], TaskId::Wooden, config);
    }
    emit_scale_rows(&mut t, grid.run(&dep, reps, 0xADB2));
    emit(&t, "abl_ad_bound_controller");
    println!(
        "Expected shape: an inverted U — quality loss from golden clipping\n\
         below 1x, quality loss from admitted errors above 1x; the profiled\n\
         bound (1x) is the knee on both sides."
    );
}
