//! Ablation — entropy-predictor input modalities (paper Fig. 11a).
//!
//! The paper's predictor fuses a CNN over the observed image with an MLP
//! over the subtask prompt embedding. This target justifies the fusion by
//! training three predictors on the same frames:
//!
//! * **image-only** — the prompt token is replaced by a constant, so the
//!   prompt branch carries no information;
//! * **prompt-only** — the image is blanked, so the CNN carries none;
//! * **fusion** — the deployed architecture with both inputs.
//!
//! Held-out R² per variant shows both modalities carry signal (the same
//! scene demands different precision under different subtasks, and the
//! same subtask varies in criticality across scenes), and fusion
//! dominates.

use create_agents::datasets::{self, EntropySample};
use create_agents::predictor::EntropyPredictor;
use create_agents::{bundle, vocab};
use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_nn::Tensor3;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Masks one modality out of a frame set.
fn mask(samples: &[EntropySample], image_on: bool, prompt_on: bool) -> Vec<EntropySample> {
    samples
        .iter()
        .map(|s| EntropySample {
            image: if image_on {
                s.image.clone()
            } else {
                Tensor3::zeros(3, 64, 64)
            },
            subtask_token: if prompt_on { s.subtask_token } else { 0 },
            entropy: s.entropy,
        })
        .collect()
}

fn main() {
    let _t = Stopwatch::start("abl_predictor");
    let dep = jarvis_deployment();

    // One shared frame set from golden controller rollouts, split
    // train/test by parity so both halves cover all tasks.
    let frames = datasets::collect_entropy(
        &dep.controller,
        &dep.tasks,
        2,
        160,
        bundle::ACT_TEMPERATURE,
        0xAB1,
    );
    let train: Vec<EntropySample> = frames.iter().step_by(2).cloned().collect();
    let test: Vec<EntropySample> = frames.iter().skip(1).step_by(2).cloned().collect();

    banner(
        "Abl. predictor",
        "input-modality ablation: held-out R² per variant",
    );
    let mut t = TextTable::new(vec!["variant", "train_mse", "holdout_r2"]);
    let variants: [(&str, bool, bool); 3] = [
        ("prompt-only", false, true),
        ("image-only", true, false),
        ("fusion", true, true),
    ];
    let mut fusion_r2 = 0.0f32;
    let mut best_single = f32::NEG_INFINITY;
    for (name, image_on, prompt_on) in variants {
        let train_v = mask(&train, image_on, prompt_on);
        let test_v = mask(&test, image_on, prompt_on);
        let mut model = EntropyPredictor::new(vocab::N_SUBTASKS, &mut StdRng::seed_from_u64(0xAB2));
        let mse = model.train(&train_v, 10, 1.5e-3, 0xAB3);
        let r2 = model.r2(&test_v);
        if name == "fusion" {
            fusion_r2 = r2;
        } else {
            best_single = best_single.max(r2);
        }
        t.row(vec![name.into(), format!("{mse:.4}"), format!("{r2:.3}")]);
    }
    emit(&t, "abl_predictor_modalities");
    println!(
        "fusion R² {fusion_r2:.3} vs best single-modality {best_single:.3}\n\
         Expected shape: fusion >= each single modality; both single\n\
         modalities retain some signal (Fig. 11a's architecture is\n\
         justified, not cosmetic)."
    );
}
