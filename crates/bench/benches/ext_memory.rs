//! Extension — memory-resilience characterization (paper Sec. 2.3/3.1
//! future work).
//!
//! The paper scopes CREATE to computational timing errors, asserting that
//! memory faults "can be effectively mitigated by ECC" and deferring
//! memory-rail characterization to future research. This target measures
//! that assertion on the same mission runner as every paper figure:
//! deployed INT8 weights pass through the modeled SRAM at a scaled memory
//! rail, picking up one retention-fault snapshot per trial, with and
//! without SECDED (72,64).
//!
//! Expected shape: unprotected weight storage collapses task quality
//! several tens of millivolts above the logic rail's protected minimum,
//! while SECDED holds golden quality down to deep undervolting for a fixed
//! 12.5% storage / ~3% read-energy overhead — i.e. the paper's prose
//! assumption, quantified.

use create_accel::sram::{MemoryFaultModel, Protection, SECDED_READ_ENERGY_OVERHEAD};
use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

/// One memory cell per (voltage, protection) pair — the whole panel runs
/// as a single engine grid instead of one pool per point.
fn grid_cells<'a>(
    dep: &'a Deployment,
    target: MemTarget,
    voltages: &[f64],
    reps: u32,
) -> Vec<MemoryCell<'a>> {
    voltages
        .iter()
        .flat_map(|&v| {
            [Protection::None, Protection::Secded].map(|protection| MemoryCell {
                dep,
                task: TaskId::Wooden,
                config: CreateConfig::golden(),
                target,
                mem: MemoryConfig::new(v, protection),
                trials: reps,
            })
        })
        .collect()
}

/// Runs one panel's grid and emits its rows: cells are built once, so a
/// row's label and its results always come from the same cell.
fn run_panel(t: &mut TextTable, cells: Vec<MemoryCell<'_>>, seed: u64) {
    let labels: Vec<(f64, String)> = cells
        .iter()
        .map(|c| (c.mem.voltage, c.mem.protection.to_string()))
        .collect();
    for ((voltage, protection), p) in labels.into_iter().zip(run_memory_grid(cells, seed)) {
        t.row(vec![
            format!("{voltage:.2}"),
            protection,
            pct(p.sweep.success_rate),
            format!("{:.0}", p.sweep.avg_steps),
            p.stats.bits_upset.to_string(),
            p.stats.words_corrected.to_string(),
            p.stats.words_detected.to_string(),
            sci(p.stats.corrupt_fraction()),
        ]);
    }
}

fn main() {
    let _t = Stopwatch::start("ext_memory");
    let dep = jarvis_deployment();
    let reps = default_reps();
    let model = MemoryFaultModel::new();

    banner(
        "Ext. M(a)",
        "SRAM retention-fault model: per-bit upset probability vs voltage",
    );
    let mut t = TextTable::new(vec!["voltage", "upset_prob"]);
    let mut v = 0.90;
    while v > 0.595 {
        t.row(vec![format!("{v:.2}"), sci(model.upset_prob(v))]);
        v -= 0.03;
    }
    emit(&t, "ext_memory_model");

    banner(
        "Ext. M(b)",
        "controller task quality vs memory-rail voltage, raw vs SECDED (wooden)",
    );
    let mut t = TextTable::new(vec![
        "mem_voltage",
        "protection",
        "success_rate",
        "avg_steps",
        "bits_upset",
        "corrected",
        "uncorrectable",
        "corrupt_words",
    ]);
    let voltages = [0.80, 0.74, 0.70, 0.68, 0.67, 0.66];
    run_panel(
        &mut t,
        grid_cells(&dep, MemTarget::Controller, &voltages, reps),
        0xE17,
    );
    emit(&t, "ext_memory_controller");

    banner(
        "Ext. M(c)",
        "planner task quality vs memory-rail voltage, raw vs SECDED (wooden)",
    );
    let mut t = TextTable::new(vec![
        "mem_voltage",
        "protection",
        "success_rate",
        "avg_steps",
        "bits_upset",
        "corrected",
        "uncorrectable",
        "corrupt_words",
    ]);
    let voltages = [0.80, 0.74, 0.70, 0.69, 0.68, 0.67, 0.66];
    run_panel(
        &mut t,
        grid_cells(&dep, MemTarget::Planner, &voltages, reps),
        0xE17B,
    );
    emit(&t, "ext_memory_planner");

    banner("Ext. M(d)", "protection overheads (fixed, by construction)");
    let mut t = TextTable::new(vec![
        "protection",
        "storage_overhead",
        "read_energy_overhead",
    ]);
    for protection in [Protection::None, Protection::Secded] {
        t.row(vec![
            protection.to_string(),
            pct(protection.storage_overhead()),
            pct(protection.read_energy_overhead()),
        ]);
    }
    emit(&t, "ext_memory_overheads");
    println!(
        "Expected shape: (1) the planner's raw weight storage cliffs near\n\
         0.68-0.69 V while SECDED ({:.1}% storage, {:.0}% read energy)\n\
         restores golden quality there and buys ~10-20 mV more margin —\n\
         the paper's Sec. 2.3 claim, quantified; (2) below ~0.67 V\n\
         double-error storms defeat SECDED too; (3) the controller\n\
         tolerates weight faults that inflate steps but rarely kill\n\
         missions — Insight 1's planner/controller asymmetry reappears in\n\
         the memory domain; (4) both units tolerate orders of magnitude\n\
         denser *weight* corruption than *activation* corruption (weight\n\
         flips are rail-bounded in INT8; accumulator flips are not).",
        100.0 * Protection::Secded.storage_overhead(),
        100.0 * SECDED_READ_ENERGY_OVERHEAD,
    );
}
