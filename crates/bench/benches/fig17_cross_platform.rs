//! Fig. 17: cross-platform generality. AD+WR applied to three planner
//! platforms (JARVIS-1, OpenVLA on LIBERO, RoboFlamingo on CALVIN) and
//! AD+VS applied to three controller platforms (JARVIS-1, Octo and RT-1 on
//! OXE), each on three tasks, reporting computational energy savings at
//! each platform/task's *searched* minimal iso-quality voltage (the same
//! acceptance rule as Fig. 16b).

use create_agents::presets::{ControllerPreset, PlannerPreset};
use create_agents::AgentSystem;
use create_bench::{banner, emit, min_voltage_point, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;
use create_tensor::Precision;

fn task_limits(task: TaskId) -> MissionLimits {
    if task.benchmark() == create_env::Benchmark::Minecraft {
        MissionLimits::default()
    } else {
        MissionLimits::manipulation()
    }
}

/// Per-task row: (task, minimal voltage, success at it, compute savings).
type Row = (TaskId, f64, f64, f64);

fn planner_eval(dep: &Deployment, tasks: &[TaskId], reps: u32) -> Vec<Row> {
    // Planner savings: AD+WR at the searched minimal planner voltage vs
    // nominal; errors on the planner only, isolating the planner platform.
    tasks
        .iter()
        .map(|&task| {
            let limits = task_limits(task);
            let nominal = run_point(
                dep,
                task,
                &CreateConfig {
                    limits,
                    ..CreateConfig::golden()
                },
                reps,
                0x17,
            );
            let (v, protected) =
                min_voltage_point(dep, task, &nominal, reps, 0x17, |v| CreateConfig {
                    planner_error: Some(ErrorSpec::voltage()),
                    planner_ad: true,
                    wr: true,
                    planner_voltage: v,
                    limits,
                    ..CreateConfig::golden()
                });
            let savings = 1.0 - protected.avg_compute_j / nominal.avg_compute_j;
            (task, v, protected.success_rate, savings)
        })
        .collect()
}

fn controller_eval(dep: &Deployment, tasks: &[TaskId], reps: u32) -> Vec<Row> {
    // Controller savings: AD + adaptive VS around the searched policy
    // mid-point vs nominal; errors on the controller only.
    tasks
        .iter()
        .map(|&task| {
            let limits = task_limits(task);
            let nominal = run_point(
                dep,
                task,
                &CreateConfig {
                    limits,
                    ..CreateConfig::golden()
                },
                reps,
                0x18,
            );
            let (v, protected) =
                min_voltage_point(dep, task, &nominal, reps, 0x18, |v| CreateConfig {
                    controller_error: Some(ErrorSpec::voltage()),
                    controller_ad: true,
                    voltage: VoltageControl::adaptive(create_baselines::shifted_policy(v)),
                    limits,
                    ..CreateConfig::golden()
                });
            let savings = 1.0 - protected.avg_compute_j / nominal.avg_compute_j;
            (task, v, protected.success_rate, savings)
        })
        .collect()
}

fn main() {
    let _t = Stopwatch::start("fig17");
    let reps = default_reps();

    let jarvis = Deployment::new(&AgentSystem::jarvis(), Precision::Int8);
    let openvla = Deployment::new(
        &AgentSystem::build(PlannerPreset::openvla(), ControllerPreset::octo()),
        Precision::Int8,
    );
    let roboflamingo = Deployment::new(
        &AgentSystem::build(PlannerPreset::roboflamingo(), ControllerPreset::rt1()),
        Precision::Int8,
    );

    banner(
        "Fig. 17(a)",
        "planner benchmarks: AD+WR energy savings at searched minimal voltage",
    );
    let mut t = TextTable::new(vec![
        "platform",
        "task",
        "min_voltage",
        "success_rate",
        "compute_savings",
    ]);
    let mut sum = 0.0;
    let mut count = 0;
    for (dep, name, tasks) in [
        (&jarvis, "JARVIS-1", vec![TaskId::Wooden, TaskId::Stone]),
        (
            &openvla,
            "OpenVLA",
            vec![TaskId::Wine, TaskId::Alphabet, TaskId::Bbq],
        ),
        (
            &roboflamingo,
            "RoboFlamingo",
            vec![TaskId::Button, TaskId::Block, TaskId::Handle],
        ),
    ] {
        for (task, v, sr, savings) in planner_eval(dep, &tasks, reps) {
            t.row(vec![
                name.to_string(),
                task.to_string(),
                format!("{v:.2}"),
                pct(sr),
                pct(savings),
            ]);
            sum += savings;
            count += 1;
        }
    }
    emit(&t, "fig17a_planner_platforms");
    println!(
        "average planner savings: {:.1}% (paper: 50.7%)",
        100.0 * sum / count as f64
    );

    banner(
        "Fig. 17(b)",
        "controller benchmarks: AD+VS energy savings at searched minimal voltage",
    );
    let mut t = TextTable::new(vec![
        "platform",
        "task",
        "min_voltage",
        "success_rate",
        "compute_savings",
    ]);
    let mut sum = 0.0;
    let mut count = 0;
    for (dep, name, tasks) in [
        (&jarvis, "JARVIS-1", vec![TaskId::Charcoal, TaskId::Chicken]),
        (
            &openvla,
            "Octo",
            vec![TaskId::Eggplant, TaskId::Coke, TaskId::Carrot],
        ),
        (
            &roboflamingo,
            "RT-1",
            vec![TaskId::Open, TaskId::Move, TaskId::Place],
        ),
    ] {
        for (task, v, sr, savings) in controller_eval(dep, &tasks, reps) {
            t.row(vec![
                name.to_string(),
                task.to_string(),
                format!("{v:.2}"),
                pct(sr),
                pct(savings),
            ]);
            sum += savings;
            count += 1;
        }
    }
    emit(&t, "fig17b_controller_platforms");
    println!(
        "average controller savings: {:.1}% (paper: 39.3%)",
        100.0 * sum / count as f64
    );
}
