//! Serving-engine throughput/latency: closed-loop clients against the
//! resident `create-serve` engine.
//!
//! At each concurrency level, `c` client threads each run a
//! submit → wait loop (one request outstanding per client) against a
//! `MissionEngine` with a pinned worker count, measuring missions/s and
//! the p50/p99 end-to-end latency (queue wait + service) per served
//! mission. Levels come from `CREATE_SERVE_LEVELS` (comma-separated,
//! default `1,8,64`; CI smoke runs `1,8`), and each level's mission
//! count derives from the level alone, so the record keys — and the
//! committed baseline in `results/baseline/BENCH_serve.json` — are
//! stable across machines.

use create_bench::{banner, emit_bench_json, jarvis_deployment, BenchRecord, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;
use create_serve::{MissionEngine, MissionRequest, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

/// Worker count pinned in the record key: the bench measures the serving
/// path, not the machine, so the baseline must not drift with core count.
const WORKERS: usize = 4;
const QUEUE: usize = 256;

/// The concurrency levels, newtyped for the shared env contract
/// (`parse_validated` needs `Display` for its fallback message).
struct Levels(Vec<usize>);

impl std::fmt::Display for Levels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rendered: Vec<String> = self.0.iter().map(usize::to_string).collect();
        f.write_str(&rendered.join(","))
    }
}

/// `CREATE_SERVE_LEVELS`: comma-separated positive client counts, through
/// the shared warn-and-fallback contract.
fn serve_levels() -> Vec<usize> {
    create_tensor::envcfg::parse_validated(
        "CREATE_SERVE_LEVELS",
        std::env::var("CREATE_SERVE_LEVELS").ok().as_deref(),
        Levels(vec![1, 8, 64]),
        |raw| {
            let levels = raw
                .split(',')
                .map(|t| match t.trim().parse::<usize>() {
                    Ok(v) if v > 0 => Ok(v),
                    _ => Err("expected comma-separated positive integers".to_string()),
                })
                .collect::<Result<Vec<usize>, String>>()?;
            if levels.is_empty() {
                return Err("expected at least one level".to_string());
            }
            Ok(Levels(levels))
        },
    )
    .0
}

/// Missions per level, a pure function of the concurrency so the record
/// key is machine-independent: enough per-client iterations to average
/// over at c=1, enough total at c=64 to exercise real contention.
fn missions_for(concurrency: usize) -> u64 {
    (3 * concurrency as u64).max(48)
}

fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((p * (sorted_ns.len() - 1) as f64).round() as usize).min(sorted_ns.len() - 1);
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let _t = Stopwatch::start("serve");
    let dep = Arc::new(jarvis_deployment());
    let task = TaskId::Wooden;
    let config = CreateConfig::golden();

    banner(
        "Serve",
        "closed-loop missions/s and latency vs client concurrency",
    );
    let mut table = TextTable::new(vec![
        "clients",
        "missions",
        "missions_per_s",
        "p50_ms",
        "p99_ms",
    ]);
    let mut records = Vec::new();
    for concurrency in serve_levels() {
        let engine = Arc::new(MissionEngine::start(
            Arc::clone(&dep),
            ServeConfig::builder()
                .workers(WORKERS)
                .queue(QUEUE)
                .base_seed(0x5E12E)
                // Measurements must stay chaos-free even when the suite
                // runs under CREATE_SERVE_CHAOS (the CI chaos-smoke job).
                .chaos(0.0)
                .build(),
        ));
        // One throwaway mission so session warm-up and lazy init stay out
        // of the measured window.
        engine
            .submit(MissionRequest::new(task, config.clone()))
            .expect("fresh queue has room")
            .wait();

        let missions = missions_for(concurrency);
        let started = Instant::now();
        let latencies_ns = std::thread::scope(|scope| {
            let clients: Vec<_> = (0..concurrency)
                .map(|client| {
                    let engine = Arc::clone(&engine);
                    let config = config.clone();
                    // Spread the remainder so exactly `missions` run.
                    let quota = missions / concurrency as u64
                        + u64::from((client as u64) < missions % concurrency as u64);
                    scope.spawn(move || {
                        let mut latencies = Vec::with_capacity(quota as usize);
                        for _ in 0..quota {
                            // Closed loop: at most `concurrency` requests
                            // outstanding, so a 256-deep queue never
                            // rejects; spin-retry stays as a safety net.
                            let mut request = MissionRequest::new(task, config.clone());
                            let served = loop {
                                match engine.submit(request) {
                                    Ok(ticket) => break ticket.wait(),
                                    Err(rejected) => {
                                        request = rejected.request;
                                        std::thread::yield_now();
                                    }
                                }
                            };
                            latencies.push(served.latency_ns());
                        }
                        latencies
                    })
                })
                .collect();
            let mut all: Vec<u64> = Vec::with_capacity(missions as usize);
            for client in clients {
                all.extend(client.join().expect("client thread"));
            }
            all
        });
        let elapsed = started.elapsed().as_secs_f64();
        match Arc::try_unwrap(engine) {
            Ok(engine) => engine.shutdown(),
            Err(_) => unreachable!("clients joined; no other engine handles"),
        }

        let mut sorted = latencies_ns.clone();
        sorted.sort_unstable();
        let missions_per_s = missions as f64 / elapsed.max(1e-9);
        let p50 = percentile_ms(&sorted, 0.50);
        let p99 = percentile_ms(&sorted, 0.99);
        table.row(vec![
            concurrency.to_string(),
            missions.to_string(),
            format!("{missions_per_s:.2}"),
            format!("{p50:.2}"),
            format!("{p99:.2}"),
        ]);
        records.push(
            BenchRecord::new()
                .str("bench", "serve_closed_loop")
                .str("task", "wooden")
                .int("workers", WORKERS as u64)
                .int("queue", QUEUE as u64)
                .int("concurrency", concurrency as u64)
                .int("missions", missions)
                .num("elapsed_s", elapsed)
                .num("missions_per_s", missions_per_s)
                .num("p50_ms", p50)
                .num("p99_ms", p99),
        );
    }
    println!("{}", table.render());
    emit_bench_json("serve", &records);
    println!(
        "Expected shape: missions/s climbs toward the {WORKERS}-worker\n\
         service ceiling as clients increase, then p99 grows with queueing."
    );
}
