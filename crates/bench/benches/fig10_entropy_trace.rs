//! Fig. 10: the controller's action-logit entropy across mission steps.
//! High entropy marks non-critical roaming; low entropy marks critical
//! execution (chopping, crafting) — the runtime criticality indicator that
//! autonomy-adaptive voltage scaling keys on.

use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("fig10");
    let dep = jarvis_deployment();

    banner("Fig. 10", "entropy across timesteps (golden log mission)");
    let config = CreateConfig {
        record_traces: true,
        ..CreateConfig::golden()
    };
    // Pick the longest successful trace among a few seeds; one session
    // reuses the inference scratch across the candidate trials.
    let mut session = MissionSession::new(&dep);
    let mut best: Option<MissionOutcome> = None;
    for seed in 0..6 {
        let out = session.run(TaskId::Log, &config, seed);
        if out.success && best.as_ref().map(|b| out.steps > b.steps).unwrap_or(true) {
            best = Some(out);
        }
    }
    let out = best.expect("at least one successful golden trial");
    let mut t = TextTable::new(vec!["step", "entropy", "phase"]);
    let max_h = (create_env::Action::COUNT as f32).ln();
    for (i, &h) in out.entropy_trace.iter().enumerate() {
        let phase = if h < 0.4 {
            "critical"
        } else if h > 1.0 {
            "non-critical"
        } else {
            "mixed"
        };
        t.row(vec![i.to_string(), format!("{h:.3}"), phase.to_string()]);
    }
    emit(&t, "fig10_entropy_trace");
    let critical = out.entropy_trace.iter().filter(|&&h| h < 0.4).count();
    let relaxed = out.entropy_trace.iter().filter(|&&h| h > 1.0).count();
    println!(
        "steps: {}; critical (H<0.4): {critical}; non-critical (H>1.0): {relaxed}; \
         theoretical max entropy ln({}) = {max_h:.2}",
        out.steps,
        create_env::Action::COUNT
    );
    println!(
        "Expected shape: alternating low-entropy execution bursts (chopping\n\
         streaks) and high-entropy exploration stretches."
    );
}
