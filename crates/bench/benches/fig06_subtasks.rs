//! Fig. 6: resilience diversity across subtasks. Sequential tasks whose
//! progress a single wrong action destroys (`log`, `stone`, `iron`)
//! degrade abruptly beyond BER ≈ 1e-4, while stochastic animal/gathering
//! tasks (`chicken`, `wool`) degrade gracefully.

use create_bench::{banner, emit, jarvis_deployment, LabeledGrid, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("fig06");
    let dep = jarvis_deployment();
    let reps = default_reps();
    let tasks = [
        TaskId::Stone,
        TaskId::Log,
        TaskId::Iron,
        TaskId::Coal,
        TaskId::Wool,
        TaskId::Chicken,
    ];
    let bers = [1e-6, 1e-5, 1e-4, 4e-4, 1e-3, 4e-3, 1e-2];

    banner(
        "Fig. 6",
        "subtask resilience diversity (controller injection, planner golden)",
    );
    let mut t = TextTable::new(vec!["ber", "task", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for &task in &tasks {
        for &ber in &bers {
            let config = CreateConfig {
                controller_error: Some(ErrorSpec::uniform(ber)),
                ..CreateConfig::golden()
            };
            grid.push(vec![sci(ber), task.to_string()], task, config);
        }
    }
    for (label, p) in grid.run(&dep, reps, 0x06) {
        let mut row = label;
        row.extend([pct(p.success_rate), format!("{:.0}", p.avg_steps)]);
        t.row(row);
    }
    emit(&t, "fig06_subtask_diversity");
    println!(
        "Expected shape: log/stone/iron (sequential interaction streaks) fall\n\
         abruptly beyond ~1e-4 while chicken/wool (stochastic animal tasks)\n\
         degrade gradually toward 1e-2."
    );
}
