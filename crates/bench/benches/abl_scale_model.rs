//! Ablation — sensitivity to the injection-scale calibration.
//!
//! DESIGN.md's single proxy-vs-reference reconciliation knob is the
//! injector's `inference_scale`: each proxy accumulator element stands for
//! `scale` reference elements and is corrupted with probability
//! `1 − (1 − p)^scale`. The planner ships with `scale = 2500` (calibrated
//! so its failure cliff lands at the paper's ~2e-8–1e-7); this target
//! sweeps the knob to show (a) the cliff moves left by one decade per
//! decade of scale, as the model predicts, and (b) the *shape* of the
//! curve — a sharp cliff — is scale-invariant, so the paper's qualitative
//! conclusions do not depend on the calibrated value.

use create_bench::{banner, ber_grid, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("abl_scale_model");
    let base = jarvis_deployment();
    let reps = default_reps();

    banner(
        "Abl. scale",
        "planner success vs BER at different injection scales (wooden)",
    );
    let mut t = TextTable::new(vec!["scale", "ber", "success_rate", "avg_steps"]);
    let mut cliffs = Vec::new();
    for &scale in &[25.0f64, 250.0, 2500.0] {
        let mut dep = base.clone();
        dep.planner_preset.injection_scale = scale;
        // Sweep a window that brackets the predicted cliff for this scale:
        // the shipped calibration (2500) cliffs near 1e-7, so scale s
        // should cliff near 1e-7 * (2500 / s).
        let center = 1e-7 * 2500.0 / scale;
        let exp = center.log10().floor() as i32;
        let mut cliff = f64::NAN;
        let mut prev = 1.0;
        for ber in ber_grid(exp - 1, exp + 1, &[1.0, 3.0]) {
            let config = CreateConfig {
                planner_error: Some(ErrorSpec::uniform(ber)),
                ..CreateConfig::golden()
            };
            let p = run_point(&dep, TaskId::Wooden, &config, reps, 0x5CA1E);
            t.row(vec![
                format!("{scale:.0}"),
                sci(ber),
                pct(p.success_rate),
                format!("{:.0}", p.avg_steps),
            ]);
            if prev >= 0.5 && p.success_rate < 0.5 && cliff.is_nan() {
                cliff = ber;
            }
            prev = p.success_rate;
        }
        cliffs.push((scale, cliff));
    }
    emit(&t, "abl_scale_model");

    println!("cliff positions (first BER with success < 50%):");
    for (scale, cliff) in &cliffs {
        println!("  scale {scale:>6.0}  cliff ~{}", sci(*cliff));
    }
    println!(
        "Expected shape: cliff BER scales inversely with the injection\n\
         scale (one decade per decade), while cliff sharpness is unchanged\n\
         — the calibration moves the curve, not its shape."
    );
}
