//! Fig. 7: stage-specific resilience within a subtask.
//!
//! Two complementary panels:
//!
//! * **(a) per-step criticality** — the paper's experiment: a *fixed-size
//!   burst* of corrupted steps lands either in the exploration phase
//!   (roaming, near-uniform action logits) or the execution phase
//!   (aligned interaction streaks, picky logits). Equal exposure, so the
//!   comparison isolates how much one corrupted step costs in each phase:
//!   an execution-phase burst breaks streak dependencies and costs more
//!   recovery steps per error.
//! * **(b) exposure-weighted vulnerability** — continuous phase-gated
//!   injection. Here exploration dominates *aggregate* risk simply
//!   because missions spend most steps exploring and navigation decides
//!   whether targets are found at all; this panel is reported because a
//!   deployment sets one voltage for whole phases, and phase duration is
//!   then part of the risk calculus.

use create_bench::{banner, emit, jarvis_deployment, LabeledGrid, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("fig07");
    let dep = jarvis_deployment();
    let reps = default_reps();

    banner(
        "Fig. 7(a)",
        "per-step criticality: equal-exposure error bursts per phase (log task)",
    );
    // Paired design: trial seeds are deterministic per index, so each
    // burst trial is compared against the *same-seed* golden trial; the
    // per-pair step difference removes world-generation variance, which
    // otherwise dwarfs a 6–24-step burst effect.
    // Post-burst trajectories diverge, so the paired difference still has
    // navigation variance of order ±100 steps; panel (a) therefore uses a
    // higher repetition floor and reports the standard error.
    let reps_a = reps.max(96);
    let mut t = TextTable::new(vec![
        "burst_steps",
        "ber",
        "phase",
        "success_rate",
        "paired_extra_steps",
        "stderr",
        "extra_per_burst_step",
    ]);
    let golden_outs = run_outcomes(&dep, TaskId::Log, &CreateConfig::golden(), reps_a, 0x07);
    for &(burst, ber) in &[(16u32, 5e-2f64), (32, 5e-2)] {
        for (gate, name) in [
            (PhaseGate::ExplorationOnly, "exploration"),
            (PhaseGate::ExecutionOnly, "execution"),
        ] {
            let config = CreateConfig {
                controller_error: Some(ErrorSpec::uniform(ber)),
                controller_phase: gate,
                controller_burst: Some(burst),
                ..CreateConfig::golden()
            };
            let outs = run_outcomes(&dep, TaskId::Log, &config, reps_a, 0x07);
            let mut successes = 0u32;
            let mut diffs = Vec::new();
            for (g, b) in golden_outs.iter().zip(&outs) {
                if b.success {
                    successes += 1;
                }
                if g.success && b.success {
                    diffs.push(b.steps as f64 - g.steps as f64);
                }
            }
            let n = diffs.len().max(1) as f64;
            let mean_extra = diffs.iter().sum::<f64>() / n;
            let var = diffs
                .iter()
                .map(|d| (d - mean_extra) * (d - mean_extra))
                .sum::<f64>()
                / n.max(2.0);
            let stderr = (var / n).sqrt();
            t.row(vec![
                burst.to_string(),
                sci(ber),
                name.to_string(),
                pct(successes as f64 / outs.len().max(1) as f64),
                format!("{mean_extra:.1}"),
                format!("{stderr:.1}"),
                format!("{:.2}", mean_extra / burst as f64),
            ]);
        }
    }
    emit(&t, "fig07a_burst_criticality");

    banner(
        "Fig. 7(b)",
        "exposure-weighted vulnerability: continuous phase-gated injection (log task)",
    );
    let bers = [1e-4, 4e-4, 1e-3, 4e-3];
    let mut t = TextTable::new(vec!["ber", "phase", "success_rate", "avg_steps"]);
    let mut grid = LabeledGrid::new();
    for (gate, name) in [
        (PhaseGate::ExplorationOnly, "exploration"),
        (PhaseGate::ExecutionOnly, "execution"),
        (PhaseGate::Always, "always"),
    ] {
        for &ber in &bers {
            let config = CreateConfig {
                controller_error: Some(ErrorSpec::uniform(ber)),
                controller_phase: gate,
                ..CreateConfig::golden()
            };
            grid.push(vec![sci(ber), name.to_string()], TaskId::Log, config);
        }
    }
    for (label, p) in grid.run(&dep, reps, 0x07) {
        let mut row = label;
        row.extend([pct(p.success_rate), format!("{:.0}", p.avg_steps)]);
        t.row(row);
    }
    emit(&t, "fig07b_stage_exposure");
    println!(
        "Expected shape: (a) at equal exposure, execution-phase bursts cost\n\
         more recovery steps per corrupted step than exploration bursts —\n\
         the paper's per-step criticality claim; (b) under continuous\n\
         injection the exploration phase dominates aggregate risk through\n\
         sheer exposure (most steps are exploration, and navigation decides\n\
         whether targets are found) — the duration side of the same\n\
         criticality calculus that autonomy-adaptive VS exploits."
    );
}
