//! Serving under injected faults: static protection vs the adaptive
//! reliability governor.
//!
//! Sweeps a raw controller BER over three serving modes — static
//! Plain+AD (cheapest), static DMR+AD (strongest always-on protection),
//! and the `create-serve` governor (starts Plain, escalates on observed
//! error signals) — and records the mission success rate and metered
//! energy per mission. The story the committed baseline pins: the
//! governor matches static DMR's success under fault pressure while
//! spending close to Plain on clean traffic, i.e. it holds the
//! reliability SLO at minimum energy instead of paying the 2–3× DMR tax
//! everywhere.
//!
//! Missions are served sequentially at deterministic seeds (one closed
//! loop, so governor feedback ordering is reproducible): success rates
//! and energy are bit-stable across machines, and `bench_report` gates
//! `success_rate` per record against `results/baseline/` plus an
//! intra-run adaptive-vs-static gate (success within slack of DMR,
//! energy measurably below it).
//!
//! BER levels come from `CREATE_SERVE_FAULT_LEVELS` (comma-separated,
//! default `1e-6,3e-2,1e-1`; CI smoke trims to a subset — the level
//! string is part of the record key, so trimmed runs still match the
//! baseline). The quasi-clean `1e-6` level (an injector present, errors
//! astronomically rare) is where always-DMR pays for redundant
//! executions it never needs; the hot levels are where Plain+AD loses
//! missions that DMR saves.

use create_accel::Scheme;
use create_bench::{banner, emit_bench_json, jarvis_deployment, BenchRecord, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;
use create_serve::{GovernorConfig, MissionEngine, MissionRequest, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

/// Pinned in the record key: the bench measures the serving policy, not
/// the machine.
const WORKERS: usize = 4;
/// Missions per (mode, BER) cell — enough for the governor to escalate
/// and settle, few enough that the 3×3 grid stays a smoke-able bench.
const MISSIONS: u64 = 16;
const BASE_SEED: u64 = 0xFA017;

/// One serving mode under test.
#[derive(Clone, Copy)]
enum Mode {
    /// Static Plain+AD — the governor's cheapest rung, served always.
    Plain,
    /// Static DMR+AD — the strongest rung, served always.
    Dmr,
    /// The adaptive governor over its default ladder.
    Adaptive,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Plain => "plain",
            Mode::Dmr => "dmr",
            Mode::Adaptive => "adaptive",
        }
    }
}

/// The BER levels, kept as `(label, value)` so the record key carries the
/// exact spelling (trimmed CI runs must produce key-identical records).
struct Levels(Vec<(String, f64)>);

impl std::fmt::Display for Levels {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rendered: Vec<&str> = self.0.iter().map(|(label, _)| label.as_str()).collect();
        f.write_str(&rendered.join(","))
    }
}

/// `CREATE_SERVE_FAULT_LEVELS`: comma-separated non-negative BERs through
/// the shared warn-and-fallback contract.
fn fault_levels() -> Vec<(String, f64)> {
    let default = Levels(vec![
        ("1e-6".to_string(), 1e-6),
        ("3e-2".to_string(), 3e-2),
        ("1e-1".to_string(), 1e-1),
    ]);
    create_tensor::envcfg::read_validated("CREATE_SERVE_FAULT_LEVELS", default, |raw| {
        let levels = raw
            .split(',')
            .map(|t| match t.trim().parse::<f64>() {
                Ok(v) if v.is_finite() && (0.0..=1.0).contains(&v) => Ok((t.trim().to_string(), v)),
                _ => Err("expected comma-separated BERs in [0, 1]".to_string()),
            })
            .collect::<Result<Vec<_>, String>>()?;
        if levels.is_empty() {
            return Err("expected at least one level".to_string());
        }
        Ok(Levels(levels))
    })
    .0
}

/// The request config every mode serves: golden controller datapath plus
/// a raw injected BER, anomaly detection armed (every rung of the ladder
/// keeps AD on), protection scheme per mode.
fn request_config(ber: f64, scheme: Scheme) -> CreateConfig {
    let mut config = CreateConfig::golden();
    if ber > 0.0 {
        config.controller_error = Some(ErrorSpec::uniform(ber));
    }
    config.controller_ad = true;
    config.scheme = scheme;
    config
}

fn main() {
    let _t = Stopwatch::start("serve_faulty");
    let dep = Arc::new(jarvis_deployment());
    let task = TaskId::Wooden;
    let levels = fault_levels();

    banner(
        "Serve/faulty",
        "static Plain/DMR vs adaptive governor under injected controller BER",
    );
    let mut table = TextTable::new(vec![
        "mode",
        "ber",
        "missions",
        "success_rate",
        "avg_energy_j",
        "escalations",
    ]);
    let mut records = Vec::new();
    for mode in [Mode::Plain, Mode::Dmr, Mode::Adaptive] {
        for (label, ber) in &levels {
            let governor = match mode {
                Mode::Adaptive => Some(GovernorConfig::default()),
                Mode::Plain | Mode::Dmr => None,
            };
            let scheme = match mode {
                Mode::Dmr => Scheme::Dmr,
                Mode::Plain | Mode::Adaptive => Scheme::Plain,
            };
            let engine = MissionEngine::start(
                Arc::clone(&dep),
                ServeConfig::builder()
                    .workers(WORKERS)
                    .queue(64)
                    .base_seed(BASE_SEED)
                    // Chaos tests supervision, not reliability policy:
                    // pinned off so CI chaos runs cannot contaminate the
                    // measurement.
                    .chaos(0.0)
                    .governor(governor)
                    .build(),
            );
            let config = request_config(*ber, scheme);
            let mut successes = 0u64;
            let mut energy_j = 0.0f64;
            let started = Instant::now();
            // Sequential closed loop: governor feedback ordering (and so
            // every decision) is deterministic, keeping the records
            // bit-stable across machines and worker counts.
            for _ in 0..MISSIONS {
                let served = engine
                    .submit(MissionRequest::new(task, config.clone()))
                    .expect("sequential load never fills the queue")
                    .wait();
                let outcome = served.outcome().expect("chaos off: missions complete");
                successes += u64::from(outcome.success);
                energy_j += outcome.energy_j();
            }
            let elapsed = started.elapsed().as_secs_f64();
            let escalations = engine
                .governor_report()
                .map_or(0, |report| report.escalations);
            engine.shutdown();

            let success_rate = successes as f64 / MISSIONS as f64;
            let avg_energy_j = energy_j / MISSIONS as f64;
            table.row(vec![
                mode.name().to_string(),
                label.clone(),
                MISSIONS.to_string(),
                format!("{success_rate:.3}"),
                format!("{avg_energy_j:.4}"),
                escalations.to_string(),
            ]);
            records.push(
                BenchRecord::new()
                    .str("bench", "serve_faulty")
                    .str("mode", mode.name())
                    .str("ber", label)
                    .str("task", "wooden")
                    .int("workers", WORKERS as u64)
                    .int("missions", MISSIONS)
                    .num("success_rate", success_rate)
                    .num("avg_energy_j", avg_energy_j)
                    .num("escalations", escalations as f64)
                    .num("elapsed_s", elapsed),
            );
        }
    }
    println!("{}", table.render());
    emit_bench_json("serve_faulty", &records);
    println!(
        "Expected shape: plain degrades as BER climbs while dmr holds;\n\
         adaptive matches dmr's success (escalating on observed signals)\n\
         but spends near plain on clean traffic."
    );
}
