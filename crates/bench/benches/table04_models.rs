//! Tables 4 and 7–10: model inventories. Reference parameters/operations
//! (what energy is book-kept against), the proxy architectures actually
//! trained and deployed, and the task registry.

use create_agents::presets::{ControllerPreset, PlannerPreset, PredictorPreset};
use create_agents::AgentSystem;
use create_bench::{banner, emit, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("table04");

    banner("Table 4", "model parameters and computational requirements");
    let mut t = TextTable::new(vec!["model", "ref_params_M", "ref_gops_int8", "proxy_arch"]);
    for p in [
        PlannerPreset::jarvis(),
        PlannerPreset::openvla(),
        PlannerPreset::roboflamingo(),
    ] {
        t.row(vec![
            format!("{} planner", p.name),
            format!("{:.0}", p.ref_params_m),
            format!("{:.0}", p.ref_gops),
            format!("{}x d{} mlp{}", p.proxy_layers, p.proxy_hidden, p.proxy_mlp),
        ]);
    }
    for c in [
        ControllerPreset::jarvis(),
        ControllerPreset::rt1(),
        ControllerPreset::octo(),
    ] {
        t.row(vec![
            format!("{} controller", c.name),
            format!("{:.0}", c.ref_params_m),
            format!("{:.0}", c.ref_gops),
            format!("{}x d{} mlp{}", c.proxy_layers, c.proxy_hidden, c.proxy_mlp),
        ]);
    }
    let pred = PredictorPreset::paper();
    t.row(vec![
        "entropy predictor".into(),
        format!("{:.3}", pred.ref_params / 1e6),
        format!("{:.3}", pred.ref_mops / 1e3),
        "Table 9 CNN+MLP".into(),
    ]);
    emit(&t, "table04_models");

    banner("Tables 7-9", "proxy architectures actually trained");
    let system = AgentSystem::jarvis();
    println!(
        "  planner:   {} blocks, d={}, vocab={}, params={}",
        system.planner.blocks.len(),
        system.planner.width(),
        create_agents::vocab::VOCAB,
        system.planner.param_count()
    );
    println!(
        "  controller: {} blocks, d={}, actions={}",
        system.controller.blocks.len(),
        system.controller.width(),
        create_env::Action::COUNT
    );
    println!(
        "  predictor: Conv(3->16->32->64, k3 s3 p1) + Linear(512->64) + fusion 128->128->1, params={}",
        system.predictor.param_count()
    );

    banner("Table 10", "task descriptions");
    let mut t = TextTable::new(vec!["benchmark", "abbr", "description", "plan_len"]);
    for task in TaskId::ALL {
        t.row(vec![
            task.benchmark().to_string(),
            task.to_string(),
            task.description().to_string(),
            task.reference_plan().len().to_string(),
        ]);
    }
    emit(&t, "table10_tasks");
}
