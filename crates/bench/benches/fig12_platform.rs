//! Fig. 12 + Tables 2–3: the hardware platform. Area/power budget of the
//! accelerator blocks (the AD units and LDOs are ~0.1% overhead), the LDO
//! specification, and the full-accelerator performance/latency table.

use create_accel::cycles::ArrayConfig;
use create_accel::platform::Platform;
use create_accel::Ldo;
use create_agents::presets::{ControllerPreset, PlannerPreset, PredictorPreset};
use create_bench::{banner, emit, Stopwatch};
use create_core::prelude::*;

fn main() {
    let _t = Stopwatch::start("fig12");
    let platform = Platform::default();
    let array = ArrayConfig::default();

    banner("Fig. 12(c)", "area and power breakdown");
    let mut t = TextTable::new(vec!["block", "area_mm2", "power_w"]);
    for b in platform.block_budgets() {
        let power = if (b.power_w_min - b.power_w_max).abs() < 1e-9 {
            format!("{:.2}", b.power_w_min)
        } else {
            format!("{:.2}-{:.2}", b.power_w_min, b.power_w_max)
        };
        t.row(vec![
            b.name.to_string(),
            format!("{:.2}", b.area_mm2),
            power,
        ]);
    }
    t.row(vec![
        "Total".to_string(),
        format!("{:.2}", platform.total_area_mm2()),
        "12.82-17.75".to_string(),
    ]);
    emit(&t, "fig12c_breakdown");
    println!(
        "AD overhead: {:.2}% area / {:.2}% power; LDO overhead: {:.2}% area / {:.2}% power",
        platform.ad_area_overhead() * 100.0,
        platform.ad_power_overhead() * 100.0,
        platform.ldo_area_overhead() * 100.0,
        platform.ldo_power_overhead() * 100.0,
    );

    banner("Table 2", "LDO specification");
    for line in platform.ldo_spec_lines() {
        println!("  {line}");
    }

    banner("Table 3", "full-accelerator performance");
    let planner = PlannerPreset::jarvis();
    let controller = ControllerPreset::jarvis();
    let predictor = PredictorPreset::paper();
    let mut t = TextTable::new(vec!["metric", "value"]);
    t.row(vec![
        "peak performance".into(),
        format!("{:.0} TOPS", array.peak_tops()),
    ]);
    t.row(vec![
        "switching latency".into(),
        format!("{:.0} ns", Ldo::worst_case_latency() * 1e9),
    ]);
    t.row(vec![
        "planner MACs".into(),
        format!("{:.1} T", planner.ref_gops / 2.0 / 1e3),
    ]);
    t.row(vec![
        "planner latency".into(),
        format!("{:.1} ms", planner.latency_s(&array) * 1e3),
    ]);
    t.row(vec![
        "controller MACs".into(),
        format!("{:.0} G", controller.ref_gops / 2.0),
    ]);
    t.row(vec![
        "controller latency".into(),
        format!("{:.0} µs", controller.latency_s(&array) * 1e6),
    ]);
    t.row(vec![
        "predictor MACs".into(),
        format!("{:.0} M", predictor.ref_mops / 2.0),
    ]);
    t.row(vec![
        "predictor latency".into(),
        format!("{:.2} µs", predictor.latency_s(&array) * 1e6),
    ]);
    emit(&t, "table03_performance");
    let realtime = platform.meets_realtime(controller.latency_s(&array), 30.0);
    println!("meets 30 Hz real-time requirement (controller + worst-case switch): {realtime}");

    banner(
        "Fig. 12(d)(e)",
        "example voltage-scaling waveform (LDO slews)",
    );
    let mut ldo = Ldo::new();
    let mut t = TextTable::new(vec!["event", "target_v", "output_v", "settle_ns"]);
    for (i, v) in [0.86, 0.82, 0.78, 0.86, 0.80].iter().enumerate() {
        let settle = ldo.set_target(*v);
        t.row(vec![
            i.to_string(),
            format!("{v:.2}"),
            format!("{:.2}", ldo.output()),
            format!("{:.0}", settle * 1e9),
        ]);
    }
    emit(&t, "fig12de_waveform");
}
