//! Fig. 20: comparison with existing techniques across operating voltages.
//! DMR is reliable but ≥2× energy; ThUnderVolt's output skipping degrades
//! task quality at low voltage; ABFT's recompute storms blow up energy
//! below ~0.84 V; CREATE holds task quality at the lowest energy.
//!
//! Extension: a Razor-style timing-borrowing contender (the class the
//! paper cites as [43–45] but does not evaluate) — reliable like DMR at a
//! lower static cost, but its per-PE overhead is always paid and replay
//! charges grow as voltage falls.

use create_baselines::BaselineKind;
use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("fig20");
    let dep = jarvis_deployment();
    let reps = default_reps();
    let voltages = [0.88, 0.86, 0.84, 0.82];

    for task in [TaskId::Wooden, TaskId::Stone] {
        banner(
            "Fig. 20",
            &format!("baseline comparison on {task}: success & energy vs voltage"),
        );
        let mut t = TextTable::new(vec![
            "voltage_v",
            "scheme",
            "success_rate",
            "avg_steps",
            "energy_j",
        ]);
        for &v in &voltages {
            for kind in BaselineKind::ALL {
                let p = run_point(&dep, task, &kind.config(v), reps, 0x20);
                t.row(vec![
                    format!("{v:.2}"),
                    kind.to_string(),
                    pct(p.success_rate),
                    format!("{:.0}", p.avg_steps),
                    format!("{:.2}", p.avg_energy_j),
                ]);
            }
        }
        emit(&t, &format!("fig20_baselines_{task}"));
    }
    println!(
        "Expected shape: DMR keeps success but costs ~2x energy; ThUnderVolt\n\
         and ABFT fall off as voltage drops; Razor (extension contender)\n\
         stays reliable but pays its 8% static overhead everywhere plus\n\
         growing replay charges; CREATE sustains success at the lowest\n\
         energy per task (paper: 35.0% / 33.8% savings over the best\n\
         baseline on wooden / stone)."
    );
}
