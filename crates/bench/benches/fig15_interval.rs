//! Fig. 15: voltage-update-interval sensitivity. Updating every 1 or 5
//! steps tracks workload changes; 10–20-step intervals react too slowly
//! (voltage stays low into critical phases), and 1-step updates pay more
//! predictor energy — 5 steps is the sweet spot the paper selects.

use create_bench::{banner, emit, jarvis_deployment, Stopwatch};
use create_core::prelude::*;
use create_env::TaskId;

fn main() {
    let _t = Stopwatch::start("fig15");
    let dep = jarvis_deployment();
    let reps = default_reps();

    banner(
        "Fig. 15",
        "voltage update interval vs success rate and energy",
    );
    let mut t = TextTable::new(vec![
        "task",
        "interval_steps",
        "success_rate",
        "energy_j",
        "effective_v",
    ]);
    for task in [TaskId::Wooden, TaskId::Stone] {
        for interval in [1u32, 5, 10, 20] {
            let config = CreateConfig {
                controller_error: Some(ErrorSpec::voltage()),
                controller_ad: true,
                voltage: VoltageControl::Adaptive {
                    policy: EntropyPolicy::preset_c(),
                    interval,
                },
                ..CreateConfig::golden()
            };
            let p = run_point(&dep, task, &config, reps, 0x15);
            t.row(vec![
                task.to_string(),
                interval.to_string(),
                pct(p.success_rate),
                format!("{:.2}", p.avg_energy_j),
                format!("{:.3}", p.effective_voltage),
            ]);
        }
    }
    emit(&t, "fig15_update_interval");
    println!(
        "Expected shape: intervals 1 and 5 sustain success; 10–20 degrade it;\n\
         5 edges out 1 on energy (fewer predictor invocations)."
    );
}
