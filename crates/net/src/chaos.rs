//! Deterministic network-fault injection for the TCP front-end.
//!
//! `CREATE_NET_CHAOS` follows the workspace chaos contract
//! (`CREATE_SERVE_CHAOS`, `CREATE_SWEEP_CHAOS`): a fraction in `[0, 1]`,
//! and whether a fault fires for a given response is a **pure function
//! of the probability and a seed** — `0` never fires, `1` always fires,
//! and the set of chaos-hit responses is identical across reruns, client
//! counts and machines.
//!
//! The front-end's unit is one *response about to be written*, and the
//! seed is the served outcome's final mission seed. A client that loses
//! a response to chaos reconnects and re-submits; the engine assigns the
//! retried request a fresh dense id, so the retry runs — and draws chaos
//! — at a *new* seed. For any `p < 1` the drop-retry loop therefore
//! terminates with probability 1 while staying fully deterministic given
//! the request history (the exact property the sweep gets from salting
//! its draws with the recovery generation).

/// Salt decorrelating net chaos draws from the serving engine's and the
/// sweep's (each has its own salt) and from the mission RNG streams.
const NET_CHAOS_SALT: u64 = 0x7E1E_C0DE_5A17_ED0D;

/// Which network fault a chaos hit injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The connection drops before the response frame is written — the
    /// client sees a clean EOF with a request outstanding.
    DropBeforeReply,
    /// Half the response frame is written, then the connection drops —
    /// the client's decoder sees a torn frame.
    TornWrite,
    /// The response stalls (bounded by `CREATE_NET_CHAOS_STALL_MS`)
    /// before being written — exercises the client's read deadline.
    StalledRead,
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw chaos draw for one response: a pure function of the served
/// mission's final seed.
pub fn chaos_draw(outcome_seed: u64) -> u64 {
    mix(outcome_seed ^ NET_CHAOS_SALT)
}

/// Whether chaos fires on this response, and which fault, given `draw`
/// from [`chaos_draw`]. The top 53 bits decide *if* (the same
/// uniform-in-`[0,1)` construction the other chaos hooks use); two low
/// bits pick the fault so all three occur across a soak.
pub fn plan_fault(probability: f64, draw: u64) -> Option<NetFault> {
    if probability <= 0.0 {
        return None;
    }
    let fires = probability >= 1.0 || ((draw >> 11) as f64 / (1u64 << 53) as f64) < probability;
    if !fires {
        return None;
    }
    Some(match draw & 3 {
        0 => NetFault::DropBeforeReply,
        1 => NetFault::TornWrite,
        _ => NetFault::StalledRead,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_never_fires_and_one_always_fires() {
        for seed in 0..200u64 {
            let draw = chaos_draw(seed);
            assert_eq!(plan_fault(0.0, draw), None);
            assert!(plan_fault(1.0, draw).is_some());
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        assert_eq!(chaos_draw(42), chaos_draw(42));
        assert_ne!(chaos_draw(42), chaos_draw(43));
    }

    #[test]
    fn firing_rate_tracks_probability() {
        let n = 4000;
        let hits = (0..n)
            .filter(|&s| plan_fault(0.25, chaos_draw(s)).is_some())
            .count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate} far from 0.25");
    }

    #[test]
    fn all_three_faults_occur() {
        let mut seen = [false; 3];
        for s in 0..200u64 {
            match plan_fault(1.0, chaos_draw(s)) {
                Some(NetFault::DropBeforeReply) => seen[0] = true,
                Some(NetFault::TornWrite) => seen[1] = true,
                Some(NetFault::StalledRead) => seen[2] = true,
                None => unreachable!("p=1 always fires"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
