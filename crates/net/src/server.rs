//! The supervised TCP front-end: one acceptor, two threads per
//! connection, every one of them expendable.
//!
//! ```text
//!            ┌────────────┐   accept   ┌──────────────────────────┐
//!  clients ──▶  acceptor  ├───────────▶│ connection (supervised)  │
//!            └────────────┘            │  reader ──▶ engine.submit │
//!                 ▲                    │  writer ◀── ticket.wait   │
//!          self-connect wakeup        └──────────────────────────┘
//! ```
//!
//! The reader parses frames, submits missions and forwards everything
//! the writer must send over a per-connection channel; the writer is the
//! *only* thread that touches the outbound half of the socket, so
//! response frames are never interleaved. Tickets travel through that
//! same channel in submission order, which makes per-connection response
//! order deterministic. Both threads run under `catch_unwind`: a panic
//! kills one connection, never the listener and never the engine.

use crate::chaos::{chaos_draw, plan_fault, NetFault};
use crate::wire::{frame, outcome_digest, ClientMsg, NetOutcome, NetReject, ServerMsg, WireError};
use crate::NetConfig;
use create_serve::{MissionEngine, MissionRequest, MissionResult, MissionTicket, ServedOutcome};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Read-poll granularity: how stale the draining flag and the idle
/// deadline can get while a reader is blocked in `read`.
const POLL: Duration = Duration::from_millis(25);

/// Counters for the front-end's observable behavior (all monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Connections accepted.
    pub connections: u64,
    /// Mission responses written (`done`, `rejected`, `failed`).
    pub responses: u64,
    /// Frames answered with a typed `error` line.
    pub wire_errors: u64,
    /// Submissions refused by the per-connection in-flight cap.
    pub overloaded: u64,
    /// Chaos faults injected into responses.
    pub chaos_injected: u64,
    /// Connection threads that died by panic (and were absorbed).
    pub panicked_connections: u64,
}

/// State shared between the acceptor, every connection and the handle.
struct ServerShared {
    engine: Arc<MissionEngine>,
    config: NetConfig,
    draining: AtomicBool,
    connections: AtomicU64,
    responses: AtomicU64,
    wire_errors: AtomicU64,
    overloaded: AtomicU64,
    chaos_injected: AtomicU64,
    panicked_connections: AtomicU64,
    /// Live connection threads, joined at shutdown. Finished threads
    /// stay in the list until then — connection counts are bounded by
    /// the soak scale this front-end serves, not web scale.
    live: Mutex<Vec<JoinHandle<()>>>,
}

/// What the reader hands the writer, in order.
enum Out {
    /// A protocol line to send as-is.
    Msg(ServerMsg),
    /// An admitted mission: the writer waits the ticket and writes the
    /// response (this is where chaos bites).
    Ticket {
        client_id: u64,
        ticket: MissionTicket,
    },
    /// Flush everything before this, say goodbye, close the socket.
    Bye,
}

/// A running front-end. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) drains gracefully: stop accepting,
/// flush every in-flight response, `bye` every connection, join every
/// thread.
///
/// Shut the server down **before** the engine: in-flight tickets
/// resolve through the still-running engine during the drain. (The
/// reverse order also terminates — an engine drain resolves its tickets
/// on its way down — it just fails new submissions as `shutting-down`.)
pub struct NetServer {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `config.addr` and starts accepting connections for
    /// `engine`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; everything after the bind is
    /// supervised and non-fatal.
    pub fn start(engine: Arc<MissionEngine>, config: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ServerShared {
            engine,
            config,
            draining: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            responses: AtomicU64::new(0),
            wire_errors: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            chaos_injected: AtomicU64::new(0),
            panicked_connections: AtomicU64::new(0),
            live: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("create-net-accept".to_string())
                .spawn(move || Self::accept_loop(&shared, &listener))
                .expect("spawn acceptor")
        };
        Ok(NetServer {
            shared,
            local_addr,
            acceptor: Some(acceptor),
        })
    }

    /// The address actually bound — with the default `127.0.0.1:0` this
    /// is where the ephemeral port lives.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the front-end counters.
    pub fn stats(&self) -> NetStats {
        let s = &self.shared;
        NetStats {
            connections: s.connections.load(Ordering::Relaxed),
            responses: s.responses.load(Ordering::Relaxed),
            wire_errors: s.wire_errors.load(Ordering::Relaxed),
            overloaded: s.overloaded.load(Ordering::Relaxed),
            chaos_injected: s.chaos_injected.load(Ordering::Relaxed),
            panicked_connections: s.panicked_connections.load(Ordering::Relaxed),
        }
    }

    /// Graceful drain; see the type docs. Idempotent via `Drop`.
    pub fn shutdown(mut self) -> NetStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.draining.store(true, Ordering::SeqCst);
        // The acceptor is blocked in `accept`; a throwaway self-connect
        // delivers it one more connection, after which it observes the
        // flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        let _ = acceptor.join();
        let handles = std::mem::take(&mut *self.shared.live.lock().expect("live list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn accept_loop(shared: &Arc<ServerShared>, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if shared.draining.load(Ordering::SeqCst) {
                        // The shutdown wakeup (or a latecomer): refuse
                        // politely and stop accepting.
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    shared.connections.fetch_add(1, Ordering::Relaxed);
                    let conn_shared = Arc::clone(shared);
                    let handle = std::thread::Builder::new()
                        .name("create-net-conn".to_string())
                        .spawn(move || Self::connection(&conn_shared, stream))
                        .expect("spawn connection thread");
                    // Registered for the drain join. Shutdown takes the
                    // list only after this acceptor has exited, so no
                    // handle can be missed.
                    shared.live.lock().expect("live list poisoned").push(handle);
                }
                Err(_) => {
                    if shared.draining.load(Ordering::SeqCst) {
                        return;
                    }
                    // Transient accept failure (EMFILE, aborted
                    // handshake): keep listening.
                }
            }
        }
    }

    /// One connection's lifetime: reader inline (supervised), writer on
    /// its own thread (supervised), goodbye + join on every exit path.
    fn connection(shared: &Arc<ServerShared>, stream: TcpStream) {
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let (tx, rx) = std::sync::mpsc::channel::<Out>();
        let inflight = Arc::new(AtomicUsize::new(0));
        let writer = {
            let shared = Arc::clone(shared);
            let inflight = Arc::clone(&inflight);
            std::thread::Builder::new()
                .name("create-net-write".to_string())
                .spawn(move || {
                    let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        Self::writer_loop(&shared, write_half, &rx, &inflight);
                    }));
                    if caught.is_err() {
                        shared.panicked_connections.fetch_add(1, Ordering::Relaxed);
                    }
                })
                .expect("spawn connection writer")
        };
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            Self::reader_loop(shared, &stream, &tx, &inflight);
        }));
        if caught.is_err() {
            shared.panicked_connections.fetch_add(1, Ordering::Relaxed);
        }
        // Dropping the sender ends the writer after it flushes whatever
        // the reader queued (including the Bye on clean paths; on a
        // reader panic the writer's closed-channel path says goodbye).
        drop(tx);
        let _ = writer.join();
    }

    /// Parses frames, enforces the in-flight cap, submits missions.
    fn reader_loop(
        shared: &ServerShared,
        mut stream: &TcpStream,
        tx: &Sender<Out>,
        inflight: &AtomicUsize,
    ) {
        let _ = stream.set_read_timeout(Some(POLL));
        let mut decoder = crate::wire::FrameBuf::new();
        let mut chunk = [0u8; 4096];
        let mut partial_since: Option<Instant> = None;
        loop {
            // Drain complete frames before reading more bytes.
            loop {
                match decoder.next_frame() {
                    Ok(Some(payload)) => {
                        if !Self::handle_line(shared, &payload, tx, inflight) {
                            return;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Length/CRC damage: framing is lost, answer and
                        // disconnect.
                        shared.wire_errors.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Out::Msg(ServerMsg::error(&e)));
                        let _ = tx.send(Out::Bye);
                        return;
                    }
                }
            }
            partial_since = match (decoder.partial() > 0, partial_since) {
                (false, _) => None,
                (true, None) => Some(Instant::now()),
                (true, some) => some,
            };
            if shared.draining.load(Ordering::SeqCst) {
                let _ = tx.send(Out::Bye);
                return;
            }
            if let Some(since) = partial_since {
                if since.elapsed() >= shared.config.idle {
                    // Slow loris: a frame held open past the idle
                    // deadline. Typed answer, then disconnect.
                    shared.wire_errors.fetch_add(1, Ordering::Relaxed);
                    let e = WireError::Torn {
                        have: decoder.partial(),
                    };
                    let _ = tx.send(Out::Msg(ServerMsg::error(&e)));
                    let _ = tx.send(Out::Bye);
                    return;
                }
            }
            match stream.read(&mut chunk) {
                Ok(0) => {
                    // Peer closed its half; flush and close ours.
                    let _ = tx.send(Out::Bye);
                    return;
                }
                Ok(n) => decoder.extend(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Poll tick: loop around to re-check drain + idle.
                }
                Err(_) => {
                    let _ = tx.send(Out::Bye);
                    return;
                }
            }
        }
    }

    /// One parsed-or-not line. Returns `false` when the connection is
    /// done reading.
    fn handle_line(
        shared: &ServerShared,
        payload: &[u8],
        tx: &Sender<Out>,
        inflight: &AtomicUsize,
    ) -> bool {
        match ClientMsg::parse(payload) {
            Ok(ClientMsg::Submit {
                client_id,
                task,
                config,
            }) => {
                let in_flight = inflight.load(Ordering::Acquire);
                if in_flight >= shared.config.inflight {
                    shared.overloaded.fetch_add(1, Ordering::Relaxed);
                    return tx
                        .send(Out::Msg(ServerMsg::Rejected {
                            client_id,
                            reason: NetReject::Overloaded { in_flight },
                        }))
                        .is_ok();
                }
                match shared
                    .engine
                    .submit(MissionRequest::new(task, config.to_config()))
                {
                    Ok(ticket) => {
                        inflight.fetch_add(1, Ordering::AcqRel);
                        tx.send(Out::Ticket { client_id, ticket }).is_ok()
                    }
                    Err(rejected) => tx
                        .send(Out::Msg(ServerMsg::Rejected {
                            client_id,
                            reason: rejected.reason.into(),
                        }))
                        .is_ok(),
                }
            }
            Ok(ClientMsg::Ping) => tx.send(Out::Msg(ServerMsg::Pong)).is_ok(),
            Ok(ClientMsg::Bye) => {
                let _ = tx.send(Out::Bye);
                false
            }
            Err(e) => {
                shared.wire_errors.fetch_add(1, Ordering::Relaxed);
                let poisoned = e.poisons_stream();
                let sent = tx.send(Out::Msg(ServerMsg::error(&e))).is_ok();
                if poisoned {
                    let _ = tx.send(Out::Bye);
                    return false;
                }
                sent
            }
        }
    }

    /// The only thread writing to the socket: flushes queued lines,
    /// waits tickets in submission order, injects chaos.
    fn writer_loop(
        shared: &ServerShared,
        mut stream: TcpStream,
        rx: &Receiver<Out>,
        inflight: &AtomicUsize,
    ) {
        let _ = stream.set_write_timeout(Some(shared.config.write));
        loop {
            match rx.recv() {
                Ok(Out::Msg(msg)) => {
                    if write_frame(&mut stream, &msg).is_err() {
                        return;
                    }
                }
                Ok(Out::Ticket { client_id, ticket }) => {
                    let served = ticket.wait();
                    inflight.fetch_sub(1, Ordering::AcqRel);
                    let msg = response_for(client_id, &served);
                    match plan_fault(shared.config.chaos, chaos_draw(served.seed)) {
                        Some(NetFault::DropBeforeReply) => {
                            shared.chaos_injected.fetch_add(1, Ordering::Relaxed);
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                        Some(NetFault::TornWrite) => {
                            shared.chaos_injected.fetch_add(1, Ordering::Relaxed);
                            let bytes = frame(msg.render().as_bytes());
                            let _ = stream.write_all(&bytes[..bytes.len() / 2]);
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                        Some(NetFault::StalledRead) => {
                            shared.chaos_injected.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(shared.config.chaos_stall);
                        }
                        None => {}
                    }
                    if write_frame(&mut stream, &msg).is_err() {
                        return;
                    }
                    shared.responses.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Out::Bye) | Err(_) => {
                    // Clean goodbye (or the reader died; still wave).
                    let _ = write_frame(&mut stream, &ServerMsg::Bye);
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The wire response for a resolved ticket.
fn response_for(client_id: u64, served: &ServedOutcome) -> ServerMsg {
    match &served.result {
        MissionResult::Completed(outcome) => ServerMsg::Done(NetOutcome {
            client_id,
            request_id: served.request_id,
            seed: served.seed,
            attempts: served.attempts,
            success: outcome.success,
            steps: outcome.steps,
            plans: outcome.plans,
            energy_bits: outcome.energy_j().to_bits(),
            digest: outcome_digest(outcome),
        }),
        MissionResult::Failed(failure) => ServerMsg::Failed {
            client_id,
            failure: *failure,
        },
    }
}

fn write_frame(stream: &mut TcpStream, msg: &ServerMsg) -> std::io::Result<()> {
    stream.write_all(&frame(msg.render().as_bytes()))
}
