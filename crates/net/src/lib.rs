//! Fault-tolerant TCP front-end for the CREATE mission-serving engine.
//!
//! The deployment story of the paper's serving engine
//! ([`create_serve::MissionEngine`]) is a *resident* process: missions
//! arrive from other processes, not from in-process callers. This crate
//! is that front door — a hand-rolled `std::net` threaded server (the
//! build environment has no async runtime and no HTTP stack, and a
//! mission takes milliseconds of CPU anyway, so blocking threads are the
//! honest architecture) speaking a CRC32-framed line protocol
//! ([`wire`]): the same length-prefix + checksum framing the sweep
//! journal trusts its crash-durable files to.
//!
//! The design budget goes to *failure semantics*, not features:
//!
//! * *Supervised connections*: each connection runs a reader and a
//!   writer thread under `catch_unwind`. A panicking, malicious or
//!   wedged connection dies alone — the listener keeps accepting and
//!   the engine keeps serving, exactly like the engine's own worker
//!   supervision.
//! * *Typed failure, end to end*: the engine's
//!   [`RejectReason`](create_serve::RejectReason) /
//!   [`ServeFailure`](create_serve::ServeFailure) cross the wire as
//!   typed lines ([`wire::NetReject`], `failed …`), and protocol damage
//!   is a typed [`wire::WireError`] answered with an `error` frame —
//!   a malformed or torn frame never crashes anything.
//! * *Deadlines everywhere*: reads, writes and mid-frame idleness all
//!   carry deadlines, so a slow-loris peer holding a frame open is
//!   disconnected instead of pinning a thread forever.
//! * *Back-pressure, not buffering*: a per-connection in-flight cap
//!   refuses (`rejected … overloaded:<n>`) rather than queueing
//!   unboundedly in front of the engine's own bounded queue.
//! * *Graceful drain*: shutdown stops accepting, resolves everything
//!   in flight, says `bye` on every connection and joins every thread.
//! * *Replayable through the network*: a `done` line carries the
//!   engine-assigned request id and seed plus a digest of the full
//!   outcome ([`wire::outcome_digest`]), so any served mission can be
//!   replayed bit-identically offline — the serving replay contract
//!   survives the wire.
//! * *Deterministic chaos*: `CREATE_NET_CHAOS` ([`chaos`]) injects
//!   dropped, torn and stalled responses as a pure function of the
//!   response's mission seed, and [`client::NetClient`]'s
//!   reconnect-with-backoff must absorb all of it — the soak test
//!   proves every request resolves exactly once anyway.

use std::time::Duration;

pub mod chaos;
pub mod client;
pub mod server;
pub mod wire;

pub use client::{NetClient, NetClientConfig, NetError, NetResponse};
pub use server::{NetServer, NetStats};
pub use wire::{ClientMsg, NetOutcome, NetReject, ServerMsg, WireConfig, WireError};

/// Front-end configuration. Build one with [`NetConfig::builder`]
/// (explicit, validated) or [`NetConfig::from_env`] (the `CREATE_NET_*`
/// environment contract).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen address (`CREATE_NET_ADDR`; default `127.0.0.1:0`, which
    /// binds an ephemeral loopback port — read it back with
    /// [`NetServer::local_addr`](server::NetServer::local_addr)).
    pub addr: String,
    /// Mid-frame idle deadline (`CREATE_NET_IDLE_MS`, default 10000):
    /// a connection that starts a frame and then stalls longer than
    /// this is a slow-loris peer and is disconnected with a typed
    /// torn-frame error. Idle connections *between* frames are fine.
    pub idle: Duration,
    /// Write deadline per response frame (`CREATE_NET_WRITE_MS`,
    /// default 5000): a peer that stops reading cannot wedge a writer
    /// thread past this.
    pub write: Duration,
    /// Per-connection in-flight request cap (`CREATE_NET_INFLIGHT`,
    /// default 32): submissions beyond it are refused with
    /// `overloaded:<n>` instead of buffering without bound.
    pub inflight: usize,
    /// Probability that a response is hit by an injected network fault
    /// (`CREATE_NET_CHAOS`, default 0; see [`chaos`]).
    pub chaos: f64,
    /// Injected stall length for [`chaos::NetFault::StalledRead`]
    /// (`CREATE_NET_CHAOS_STALL_MS`, default 300).
    pub chaos_stall: Duration,
}

impl NetConfig {
    /// A validated builder; unset knobs fall back to their env-backed
    /// defaults at [`build`](NetConfigBuilder::build) time.
    pub fn builder() -> NetConfigBuilder {
        NetConfigBuilder::default()
    }

    /// Configuration from the `CREATE_NET_*` environment —
    /// [`builder`](Self::builder) with nothing overridden.
    pub fn from_env() -> Self {
        Self::builder().build()
    }
}

/// Validated builder for [`NetConfig`], following the workspace builder
/// contract ([`create_serve::ServeConfig::builder`]): out-of-range
/// explicit settings are adjusted to the nearest safe value with a
/// warning on the shared [`envcfg`](create_tensor::envcfg) stderr
/// channel — never a panic, never a silent adjustment — and anything
/// left unset resolves through the `CREATE_NET_*` environment at
/// [`build`](Self::build) time.
#[derive(Debug, Clone, Default)]
pub struct NetConfigBuilder {
    addr: Option<String>,
    idle: Option<Duration>,
    write: Option<Duration>,
    inflight: Option<usize>,
    chaos: Option<f64>,
    chaos_stall: Option<Duration>,
}

impl NetConfigBuilder {
    /// Listen address (default `CREATE_NET_ADDR`, falling back to
    /// `127.0.0.1:0`).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = Some(addr.into());
        self
    }

    /// Mid-frame idle deadline (floored at 1 ms with a warning; default
    /// `CREATE_NET_IDLE_MS`).
    pub fn idle(mut self, idle: Duration) -> Self {
        self.idle = Some(floored_ms("CREATE_NET_IDLE_MS", idle));
        self
    }

    /// Response write deadline (floored at 1 ms with a warning; default
    /// `CREATE_NET_WRITE_MS`).
    pub fn write(mut self, write: Duration) -> Self {
        self.write = Some(floored_ms("CREATE_NET_WRITE_MS", write));
        self
    }

    /// Per-connection in-flight cap (floored at 1 with a warning — a cap
    /// of 0 could admit nothing, ever; default `CREATE_NET_INFLIGHT`).
    pub fn inflight(mut self, inflight: usize) -> Self {
        if inflight == 0 {
            create_tensor::envcfg::warn_adjusted(
                "CREATE_NET_INFLIGHT",
                inflight,
                1usize,
                "a zero in-flight cap would refuse every request",
            );
        }
        self.inflight = Some(inflight.max(1));
        self
    }

    /// Chaos probability, clamped to `[0, 1]` with a warning when the
    /// given value is outside it (default `CREATE_NET_CHAOS`).
    pub fn chaos(mut self, probability: f64) -> Self {
        let used = if probability.is_finite() {
            probability.clamp(0.0, 1.0)
        } else {
            0.0
        };
        if used != probability {
            create_tensor::envcfg::warn_adjusted(
                "CREATE_NET_CHAOS",
                probability,
                used,
                "chaos probability must be a fraction in [0, 1]",
            );
        }
        self.chaos = Some(used);
        self
    }

    /// Injected stall length (floored at 1 ms with a warning; default
    /// `CREATE_NET_CHAOS_STALL_MS`).
    pub fn chaos_stall(mut self, stall: Duration) -> Self {
        self.chaos_stall = Some(floored_ms("CREATE_NET_CHAOS_STALL_MS", stall));
        self
    }

    /// Resolves unset knobs from the environment and builds the config.
    pub fn build(self) -> NetConfig {
        use create_tensor::envcfg;
        NetConfig {
            addr: self
                .addr
                .unwrap_or_else(|| match std::env::var("CREATE_NET_ADDR") {
                    Ok(s) if !s.trim().is_empty() => s.trim().to_string(),
                    _ => "127.0.0.1:0".to_string(),
                }),
            idle: self
                .idle
                .unwrap_or_else(|| envcfg::read_positive_ms("CREATE_NET_IDLE_MS", 10_000)),
            write: self
                .write
                .unwrap_or_else(|| envcfg::read_positive_ms("CREATE_NET_WRITE_MS", 5_000)),
            inflight: self
                .inflight
                .unwrap_or_else(|| envcfg::read_positive_usize("CREATE_NET_INFLIGHT", 32)),
            chaos: self
                .chaos
                .unwrap_or_else(|| envcfg::read_fraction("CREATE_NET_CHAOS", 0.0)),
            chaos_stall: self
                .chaos_stall
                .unwrap_or_else(|| envcfg::read_positive_ms("CREATE_NET_CHAOS_STALL_MS", 300)),
        }
    }
}

/// Floors a builder-supplied duration at 1 ms, warning through the
/// shared channel when it adjusts (a zero deadline would disconnect or
/// time out everything instantly).
fn floored_ms(name: &str, given: Duration) -> Duration {
    let floor = Duration::from_millis(1);
    if given < floor {
        create_tensor::envcfg::warn_adjusted(
            name,
            format!("{}ms", given.as_millis()),
            "1ms",
            "deadlines below 1ms would expire everything instantly",
        );
        floor
    } else {
        given
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_floors_and_clamps_out_of_range_settings() {
        let cfg = NetConfig::builder()
            .addr("127.0.0.1:0")
            .idle(Duration::ZERO)
            .write(Duration::ZERO)
            .inflight(0)
            .chaos(7.5)
            .chaos_stall(Duration::ZERO)
            .build();
        assert_eq!(cfg.idle, Duration::from_millis(1));
        assert_eq!(cfg.write, Duration::from_millis(1));
        assert_eq!(cfg.inflight, 1);
        assert_eq!(cfg.chaos, 1.0);
        assert_eq!(cfg.chaos_stall, Duration::from_millis(1));
        assert_eq!(NetConfig::builder().chaos(f64::NAN).build().chaos, 0.0);
    }

    #[test]
    fn builder_keeps_valid_settings_verbatim() {
        let cfg = NetConfig::builder()
            .addr("0.0.0.0:4317")
            .idle(Duration::from_millis(40))
            .write(Duration::from_millis(20))
            .inflight(4)
            .chaos(0.25)
            .chaos_stall(Duration::from_millis(10))
            .build();
        assert_eq!(cfg.addr, "0.0.0.0:4317");
        assert_eq!(cfg.idle, Duration::from_millis(40));
        assert_eq!(cfg.write, Duration::from_millis(20));
        assert_eq!(cfg.inflight, 4);
        assert_eq!(cfg.chaos, 0.25);
        assert_eq!(cfg.chaos_stall, Duration::from_millis(10));
    }
}
