//! The reconnecting client: one correlation id per logical request, a
//! retry budget, and deterministic jittered backoff.
//!
//! [`NetClient::call`] owns the whole failure surface: transport faults
//! (dropped connections, torn frames, read deadlines, `bye` frames,
//! `error` answers) reconnect and **re-submit at the same client-side
//! correlation id**; load rejections (`queue-full`, `overloaded`) back
//! off and retry until the budget runs out, then come back as the typed
//! [`NetResponse::Rejected`] they are. Terminal answers (`done`,
//! `failed`, `shutting-down`, `deadline-expired`) return immediately.
//! Every call resolves exactly once — a response, a typed rejection, or
//! [`NetError::Exhausted`]; nothing hangs and nothing is silently
//! dropped, which is the client half of the soak test's contract.
//!
//! The engine assigns a retried submission a fresh request id — and
//! therefore a fresh deterministic seed — so the server-side replay
//! contract ([`create_serve::request_seed`]) is preserved: whichever
//! attempt's `done` line finally arrives carries the id and seed that
//! replay it bit-for-bit.

use crate::wire::{frame, ClientMsg, FrameBuf, NetOutcome, NetReject, ServerMsg, WireConfig};
use create_env::TaskId;
use create_serve::{request_seed, ServeFailure};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Salt decorrelating client backoff jitter from every other consumer of
/// [`request_seed`].
const BACKOFF_SALT: u64 = 0xBACC_0FF5_EEDF_00D5;

/// How a logical request resolved. All three arms are *resolutions* —
/// the typed-failure contract of the serving engine, carried across the
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetResponse {
    /// A completed mission (successful or not — see
    /// [`NetOutcome::success`]).
    Done(NetOutcome),
    /// The server refused it and the retry budget could not get it
    /// admitted (or the refusal was terminal).
    Rejected(NetReject),
    /// The serving layer failed it after admission.
    Failed(ServeFailure),
}

/// The client ran out of retry budget without any typed resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Every attempt died on the transport.
    Exhausted {
        /// The correlation id of the abandoned request.
        client_id: u64,
        /// Attempts made (1 + retries).
        attempts: u32,
        /// Human-readable description of the last transport fault.
        last: String,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Exhausted {
                client_id,
                attempts,
                last,
            } => write!(
                f,
                "request {client_id} abandoned after {attempts} attempt(s); last fault: {last}"
            ),
        }
    }
}

impl std::error::Error for NetError {}

/// Client knobs. [`Default`] suits tests and benches on loopback.
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Server address.
    pub addr: String,
    /// Transport/rejection retries after the first attempt.
    pub retries: u32,
    /// Base backoff before the first retry; doubles per attempt with
    /// deterministic jitter, capped at one second (the engine's own
    /// retry curve).
    pub backoff: Duration,
    /// How long to wait for each response frame before treating the
    /// connection as dead.
    pub read_timeout: Duration,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl NetClientConfig {
    /// Defaults against `addr`.
    pub fn new(addr: impl Into<String>) -> Self {
        NetClientConfig {
            addr: addr.into(),
            retries: 8,
            backoff: Duration::from_millis(10),
            read_timeout: Duration::from_secs(10),
            seed: 0,
        }
    }
}

/// What one wire exchange produced.
enum Exchange {
    Reply(ServerMsg),
    /// The transport died (description): reconnect and retry.
    Dead(String),
}

/// A lazily connecting, automatically reconnecting client. Not
/// thread-safe by design — one client per thread, like one
/// [`MissionSession`](create_core::mission::MissionSession) per worker.
pub struct NetClient {
    config: NetClientConfig,
    conn: Option<Conn>,
    next_client_id: u64,
    /// Transport faults absorbed so far (reconnect-and-retry events).
    transport_faults: u64,
}

struct Conn {
    stream: TcpStream,
    decoder: FrameBuf,
}

impl NetClient {
    /// A client for `addr` with default knobs; connects lazily on the
    /// first call.
    pub fn connect(addr: impl Into<String>) -> NetClient {
        Self::with_config(NetClientConfig::new(addr))
    }

    /// A client with explicit knobs.
    pub fn with_config(config: NetClientConfig) -> NetClient {
        NetClient {
            config,
            conn: None,
            next_client_id: 0,
            transport_faults: 0,
        }
    }

    /// Transport faults absorbed by reconnect-and-retry so far.
    pub fn transport_faults(&self) -> u64 {
        self.transport_faults
    }

    /// Runs one mission remotely; resolves exactly once (see the module
    /// docs for the retry semantics).
    ///
    /// # Errors
    ///
    /// [`NetError::Exhausted`] when the retry budget dies entirely on
    /// the transport.
    pub fn call(&mut self, task: TaskId, config: WireConfig) -> Result<NetResponse, NetError> {
        let client_id = self.next_client_id;
        self.next_client_id += 1;
        let msg = ClientMsg::Submit {
            client_id,
            task,
            config,
        };
        let mut last_fault = "never attempted".to_string();
        let mut last_reject: Option<NetReject> = None;
        let mut attempts = 0u32;
        while attempts <= self.config.retries {
            if attempts > 0 {
                std::thread::sleep(backoff_delay(
                    self.config.backoff,
                    attempts,
                    self.config.seed ^ client_id,
                ));
            }
            attempts += 1;
            match self.exchange(&msg, client_id) {
                Exchange::Reply(ServerMsg::Done(outcome)) => {
                    return Ok(NetResponse::Done(outcome));
                }
                Exchange::Reply(ServerMsg::Failed { failure, .. }) => {
                    return Ok(NetResponse::Failed(failure));
                }
                Exchange::Reply(ServerMsg::Rejected { reason, .. }) => match reason {
                    // Load shedding: worth retrying within the budget.
                    NetReject::QueueFull { .. } | NetReject::Overloaded { .. } => {
                        last_reject = Some(reason);
                    }
                    // Terminal: retrying cannot help.
                    NetReject::ShuttingDown | NetReject::DeadlineExpired => {
                        return Ok(NetResponse::Rejected(reason));
                    }
                },
                Exchange::Reply(other) => {
                    // `pong`/`bye`/`error` in answer to a submit: the
                    // exchange path treats those as transport faults, so
                    // reaching here is a protocol bug worth surfacing.
                    self.drop_conn();
                    last_fault = format!("unexpected reply '{}'", other.render());
                }
                Exchange::Dead(fault) => {
                    self.drop_conn();
                    self.transport_faults += 1;
                    last_fault = fault;
                }
            }
        }
        match last_reject {
            // The budget saw typed rejections: resolve as one.
            Some(reason) => Ok(NetResponse::Rejected(reason)),
            None => Err(NetError::Exhausted {
                client_id,
                attempts,
                last: last_fault,
            }),
        }
    }

    /// Liveness probe: `ping` → `pong` over the current (or a fresh)
    /// connection. `false` means the transport died.
    pub fn ping(&mut self) -> bool {
        let id = u64::MAX; // pings carry no correlation id
        match self.exchange(&ClientMsg::Ping, id) {
            Exchange::Reply(ServerMsg::Pong) => true,
            _ => {
                self.drop_conn();
                false
            }
        }
    }

    /// Polite goodbye: tells the server, waits for its `bye`, closes.
    pub fn goodbye(&mut self) {
        if let Some(conn) = self.conn.as_mut() {
            let _ = conn
                .stream
                .write_all(&frame(ClientMsg::Bye.render().as_bytes()));
            // Read until `bye` or the connection closes; bounded by the
            // read timeout either way.
            loop {
                match read_reply(conn) {
                    Ok(ServerMsg::Bye) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        }
        self.drop_conn();
    }

    /// One submit-and-await-reply exchange. Replies that cannot answer a
    /// submit (`pong` aside — stray pongs are skipped) are folded into
    /// [`Exchange::Dead`] so the retry loop handles every transport
    /// fate in one place.
    fn exchange(&mut self, msg: &ClientMsg, client_id: u64) -> Exchange {
        let conn = match self.ensure_conn() {
            Ok(conn) => conn,
            Err(e) => return Exchange::Dead(format!("connect failed: {e}")),
        };
        if let Err(e) = conn.stream.write_all(&frame(msg.render().as_bytes())) {
            return Exchange::Dead(format!("write failed: {e}"));
        }
        loop {
            match read_reply(conn) {
                Ok(ServerMsg::Pong) if !matches!(msg, ClientMsg::Ping) => {
                    // A stray pong from an earlier ping; keep waiting.
                }
                Ok(ServerMsg::Bye) => return Exchange::Dead("server said bye".to_string()),
                Ok(ServerMsg::Error(detail)) => {
                    // Our frame arrived damaged (or we spoke out of
                    // turn); the server may also disconnect. Re-submit
                    // on a fresh connection.
                    return Exchange::Dead(format!("server reported: {detail}"));
                }
                Ok(reply) => {
                    if reply_answers(&reply, client_id) {
                        return Exchange::Reply(reply);
                    }
                    return Exchange::Dead(format!(
                        "correlation mismatch: got '{}' awaiting {client_id}",
                        reply.render()
                    ));
                }
                Err(fault) => return Exchange::Dead(fault),
            }
        }
    }

    fn ensure_conn(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.config.addr.as_str())?;
            stream.set_read_timeout(Some(self.config.read_timeout))?;
            stream.set_write_timeout(Some(self.config.read_timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(Conn {
                stream,
                decoder: FrameBuf::new(),
            });
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    fn drop_conn(&mut self) {
        if let Some(conn) = self.conn.take() {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
    }
}

/// Whether `reply` answers the request correlated as `client_id`.
fn reply_answers(reply: &ServerMsg, client_id: u64) -> bool {
    match reply {
        ServerMsg::Done(o) => o.client_id == client_id,
        ServerMsg::Rejected { client_id: id, .. } | ServerMsg::Failed { client_id: id, .. } => {
            *id == client_id
        }
        ServerMsg::Pong => true,
        ServerMsg::Error(_) | ServerMsg::Bye => false,
    }
}

/// Reads one reply frame (bounded by the stream's read timeout).
fn read_reply(conn: &mut Conn) -> Result<ServerMsg, String> {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.decoder.next_frame() {
            Ok(Some(payload)) => {
                return ServerMsg::parse(&payload).map_err(|e| format!("bad reply frame: {e}"));
            }
            Ok(None) => {}
            Err(e) => return Err(format!("damaged reply stream: {e}")),
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => return Err("connection closed by server".to_string()),
            Ok(n) => conn.decoder.extend(&chunk[..n]),
            Err(e) => return Err(format!("read failed: {e}")),
        }
    }
}

/// The engine's retry curve, client-side: `base · 2^(attempt-1)`,
/// jittered deterministically into `[0.5, 1.5)`, capped at one second.
fn backoff_delay(base: Duration, attempt: u32, seed: u64) -> Duration {
    let exp = base.as_secs_f64() * f64::from(1u32 << (attempt - 1).min(10));
    let z = request_seed(seed ^ BACKOFF_SALT, u64::from(attempt));
    let jitter = 0.5 + (z >> 11) as f64 / (1u64 << 53) as f64;
    Duration::from_secs_f64((exp * jitter).min(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let base = Duration::from_millis(10);
        for attempt in 1..6u32 {
            let a = backoff_delay(base, attempt, 7);
            assert_eq!(a, backoff_delay(base, attempt, 7));
            let exp = base.as_secs_f64() * f64::from(1u32 << (attempt - 1));
            assert!(a.as_secs_f64() >= exp * 0.5 - 1e-9);
            assert!(a.as_secs_f64() < (exp * 1.5).min(1.0) + 1e-9);
        }
        assert_ne!(backoff_delay(base, 3, 7), backoff_delay(base, 3, 8));
        assert!(backoff_delay(Duration::from_secs(5), 9, 1) <= Duration::from_secs(1));
    }
}
