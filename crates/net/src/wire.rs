//! The wire protocol: CRC32-framed, length-prefixed text lines.
//!
//! Every message on a connection — either direction — is one *frame*,
//! the same shape the sweep journal uses for its checkpoint records
//! (and the same [`crc32`] primitive):
//!
//! ```text
//! [payload len: u32 LE][CRC32 (IEEE) of payload: u32 LE][payload]
//! ```
//!
//! The payload is one UTF-8 text line (no newline), space-separated:
//!
//! ```text
//! client -> server:
//!   submit <client-id> <task> <config>     config: golden | undervolted:<v>
//!   ping
//!   bye
//! server -> client:
//!   done <client-id> <request-id> <seed> <attempts> <success:0|1>
//!        <steps> <plans> <energy:hex16> <digest:hex16>
//!   rejected <client-id> <reason>          reason: queue-full:<cap> |
//!                                          shutting-down | deadline-expired |
//!                                          overloaded:<in-flight>
//!   failed <client-id> <kind>              kind: panicked | deadline-expired
//!   error <description...>
//!   pong
//!   bye
//! ```
//!
//! A frame that fails its CRC, claims an oversize length, carries
//! non-UTF-8 bytes or parses to no known command is a typed
//! [`WireError`] — the receiving side answers with an `error` frame
//! and/or disconnects (see the server's failure policy), it never
//! panics. A stream that ends (or stalls past the idle deadline) inside
//! a frame is *torn* — [`WireError::Torn`], the network twin of the
//! journal's torn tail.
//!
//! The `done` line carries the served request's identity (`request-id`,
//! `seed`), its exact energy bits and an [`outcome_digest`] of the full
//! [`MissionOutcome`] — so a client can prove bit-identical offline
//! replay (`run_trial_with` at the recorded seed must reproduce the
//! digest) without shipping the whole outcome across the wire.

use create_core::mission::MissionOutcome;
use create_env::TaskId;
use create_serve::{RejectReason, ServeFailure};
pub use create_tensor::crc::crc32;

/// Frame header bytes: length + CRC, both `u32` LE.
pub const FRAME_HEADER_LEN: usize = 8;

/// Payloads larger than this are rejected — a corrupt length field must
/// not make the reader buffer gigabytes (wire lines are < 200 bytes).
pub const MAX_PAYLOAD: u32 = 64 * 1024;

/// Wraps one payload in a frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Typed wire-protocol error — what a peer did wrong (or what the
/// network did to its bytes). Rendered (via [`Display`](std::fmt::Display))
/// into `error` frames, so the text is part of the protocol: plain
/// words, no `{:?}` escapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended (or stalled past the idle deadline) inside a
    /// frame; `have` bytes of it had arrived.
    Torn {
        /// Bytes of the incomplete frame received.
        have: usize,
    },
    /// A complete frame whose payload does not match its CRC.
    Corrupt {
        /// The CRC the frame header claimed.
        expected: u32,
        /// The CRC of the bytes that actually arrived.
        found: u32,
    },
    /// A frame header claiming a payload beyond [`MAX_PAYLOAD`].
    Oversize {
        /// The claimed payload length.
        len: u32,
    },
    /// A valid frame whose payload is not UTF-8 text.
    NotText,
    /// A well-formed line starting with a verb this protocol version
    /// does not know.
    UnknownCommand(String),
    /// A known verb with missing or malformed arguments.
    BadArgument {
        /// The verb whose arguments failed to parse.
        command: &'static str,
        /// What was wrong, in protocol-grammar terms.
        detail: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Torn { have } => {
                write!(f, "torn frame: stream ended {have} byte(s) into a frame")
            }
            WireError::Corrupt { expected, found } => write!(
                f,
                "frame checksum mismatch (header says {expected:08x}, payload is {found:08x})"
            ),
            WireError::Oversize { len } => write!(
                f,
                "frame claims {len} payload bytes, over the {MAX_PAYLOAD}-byte cap"
            ),
            WireError::NotText => f.write_str("frame payload is not utf-8 text"),
            WireError::UnknownCommand(verb) => write!(f, "unknown command '{verb}'"),
            WireError::BadArgument { command, detail } => {
                write!(f, "bad '{command}' arguments: {detail}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl WireError {
    /// Whether the byte stream can still be trusted after this error: a
    /// bad *line* inside a checksummed frame leaves framing intact
    /// (answer and keep reading), but a length/CRC/UTF-8 failure means
    /// the stream itself is damaged — after answering, the only safe
    /// policy is to disconnect, because frame boundaries can no longer
    /// be re-synchronized.
    pub fn poisons_stream(&self) -> bool {
        !matches!(
            self,
            WireError::UnknownCommand(_) | WireError::BadArgument { .. }
        )
    }
}

/// Incremental frame extractor over a byte stream: feed bytes as they
/// arrive, pull complete payloads out. The pure-function twin
/// [`scan_stream`] drives the property tests.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    at: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends freshly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Drop consumed prefix before growing, keeping the buffer bounded
        // by one partial frame plus one read chunk.
        if self.at > 0 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pulls the next complete payload: `Ok(Some(payload))`, or
    /// `Ok(None)` when more bytes are needed, or the typed error when
    /// the next frame is structurally invalid (oversize length or CRC
    /// mismatch — [`WireError::poisons_stream`] errors).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let bytes = &self.buf[self.at..];
        let Some(head) = bytes.get(..FRAME_HEADER_LEN) else {
            return Ok(None);
        };
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
        let want_crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversize { len });
        }
        let Some(payload) = bytes.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + len as usize) else {
            return Ok(None);
        };
        let found = crc32(payload);
        if found != want_crc {
            return Err(WireError::Corrupt {
                expected: want_crc,
                found,
            });
        }
        let payload = payload.to_vec();
        self.at += FRAME_HEADER_LEN + len as usize;
        Ok(Some(payload))
    }

    /// Bytes of a partial frame currently sitting in the buffer (0 when
    /// the stream is at a frame boundary) — what the slow-loris deadline
    /// watches.
    pub fn partial(&self) -> usize {
        self.buf.len() - self.at
    }
}

/// Scans a complete byte stream into `(payloads, clean prefix length,
/// fault)`: every valid frame in order, how many bytes of the stream
/// they cover, and the typed fault that stopped the scan (`Torn` when
/// the stream ends inside a frame, `Corrupt`/`Oversize` on damage,
/// `None` on a clean end-of-stream at a frame boundary).
pub fn scan_stream(bytes: &[u8]) -> (Vec<Vec<u8>>, usize, Option<WireError>) {
    let mut frames = Vec::new();
    let mut decoder = FrameBuf::new();
    decoder.extend(bytes);
    let mut clean = 0usize;
    loop {
        match decoder.next_frame() {
            Ok(Some(payload)) => {
                clean += FRAME_HEADER_LEN + payload.len();
                frames.push(payload);
            }
            Ok(None) => {
                let have = bytes.len() - clean;
                return (
                    frames,
                    clean,
                    (have > 0).then_some(WireError::Torn { have }),
                );
            }
            Err(e) => return (frames, clean, Some(e)),
        }
    }
}

/// The canonical wire spelling of a task (the paper's single-word
/// abbreviations, lowercased — `wooden`, `stone`, …).
pub fn task_name(task: TaskId) -> String {
    format!("{task:?}").to_ascii_lowercase()
}

/// Parses a wire task name (case-insensitive over [`TaskId::ALL`]).
pub fn parse_task(text: &str) -> Option<TaskId> {
    TaskId::ALL
        .into_iter()
        .find(|t| task_name(*t).eq_ignore_ascii_case(text.trim()))
}

/// The mission configurations the wire grammar can express — the
/// deployment corners the serving workloads use, not the full
/// [`CreateConfig`](create_core::config::CreateConfig) surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireConfig {
    /// Fault-free reference configuration.
    Golden,
    /// Both units injected with the hardware error model at this supply
    /// voltage (`CreateConfig::undervolted`).
    Undervolted(f64),
}

impl WireConfig {
    /// The trial configuration this wire spelling denotes.
    pub fn to_config(self) -> create_core::config::CreateConfig {
        match self {
            WireConfig::Golden => create_core::config::CreateConfig::golden(),
            WireConfig::Undervolted(v) => create_core::config::CreateConfig::undervolted(v),
        }
    }

    fn render(self) -> String {
        match self {
            WireConfig::Golden => "golden".to_string(),
            // `{}` on f64 is the shortest representation that parses
            // back exactly, so the voltage survives the round trip
            // bit-for-bit — the replay contract needs that.
            WireConfig::Undervolted(v) => format!("undervolted:{v}"),
        }
    }

    fn parse(text: &str) -> Result<Self, String> {
        if text.eq_ignore_ascii_case("golden") {
            return Ok(WireConfig::Golden);
        }
        if let Some(v) = text.strip_prefix("undervolted:") {
            return match v.parse::<f64>() {
                Ok(v) if v.is_finite() && v > 0.0 && v <= 2.0 => Ok(WireConfig::Undervolted(v)),
                _ => Err(format!("voltage '{v}' is not in (0, 2]")),
            };
        }
        Err(format!("unknown config '{text}'"))
    }
}

/// Why the server refused a submission — the engine's [`RejectReason`]s
/// plus the connection-level in-flight cap. This is how back-pressure
/// reaches clients instead of piling up in server buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetReject {
    /// The engine's bounded request queue is at capacity.
    QueueFull {
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// The engine (or the front-end) is draining and admits nothing.
    ShuttingDown,
    /// The request's deadline had already expired at admission.
    DeadlineExpired,
    /// This connection already has its in-flight cap's worth of
    /// unanswered requests; wait for responses before submitting more.
    Overloaded {
        /// Requests in flight on the connection when this was refused.
        in_flight: usize,
    },
}

impl From<RejectReason> for NetReject {
    fn from(reason: RejectReason) -> Self {
        match reason {
            RejectReason::QueueFull { capacity } => NetReject::QueueFull { capacity },
            RejectReason::ShuttingDown => NetReject::ShuttingDown,
            RejectReason::DeadlineExpired => NetReject::DeadlineExpired,
        }
    }
}

impl std::fmt::Display for NetReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetReject::QueueFull { capacity } => {
                write!(f, "engine queue full (capacity {capacity})")
            }
            NetReject::ShuttingDown => f.write_str("server is shutting down"),
            NetReject::DeadlineExpired => f.write_str("deadline expired before admission"),
            NetReject::Overloaded { in_flight } => {
                write!(f, "connection in-flight cap reached ({in_flight} pending)")
            }
        }
    }
}

impl std::error::Error for NetReject {}

impl NetReject {
    fn render(self) -> String {
        match self {
            NetReject::QueueFull { capacity } => format!("queue-full:{capacity}"),
            NetReject::ShuttingDown => "shutting-down".to_string(),
            NetReject::DeadlineExpired => "deadline-expired".to_string(),
            NetReject::Overloaded { in_flight } => format!("overloaded:{in_flight}"),
        }
    }

    fn parse(text: &str) -> Result<Self, String> {
        if let Some(cap) = text.strip_prefix("queue-full:") {
            return cap
                .parse::<usize>()
                .map(|capacity| NetReject::QueueFull { capacity })
                .map_err(|_| format!("bad queue capacity '{cap}'"));
        }
        if let Some(n) = text.strip_prefix("overloaded:") {
            return n
                .parse::<usize>()
                .map(|in_flight| NetReject::Overloaded { in_flight })
                .map_err(|_| format!("bad in-flight count '{n}'"));
        }
        match text {
            "shutting-down" => Ok(NetReject::ShuttingDown),
            "deadline-expired" => Ok(NetReject::DeadlineExpired),
            other => Err(format!("unknown reject reason '{other}'")),
        }
    }
}

fn render_failure(failure: ServeFailure) -> &'static str {
    match failure {
        ServeFailure::Panicked => "panicked",
        ServeFailure::DeadlineExpired => "deadline-expired",
    }
}

fn parse_failure(text: &str) -> Result<ServeFailure, String> {
    match text {
        "panicked" => Ok(ServeFailure::Panicked),
        "deadline-expired" => Ok(ServeFailure::DeadlineExpired),
        other => Err(format!("unknown failure kind '{other}'")),
    }
}

/// A served mission as it crosses the wire: identity, seed, summary
/// metrics, exact energy bits and the full-outcome digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetOutcome {
    /// The client-chosen correlation id the response answers.
    pub client_id: u64,
    /// The engine's dense admission-order request id.
    pub request_id: u64,
    /// The deterministic seed of the final attempt — the replay handle.
    pub seed: u64,
    /// Mission attempts executed server-side.
    pub attempts: u32,
    /// Whether the mission achieved its goal.
    pub success: bool,
    /// Environment steps executed.
    pub steps: u64,
    /// Planner invocations.
    pub plans: u32,
    /// `f64::to_bits` of the metered mission energy (J) — bits, so the
    /// value survives the text protocol exactly.
    pub energy_bits: u64,
    /// [`outcome_digest`] of the full served [`MissionOutcome`].
    pub digest: u64,
}

impl NetOutcome {
    /// Metered mission energy in joules.
    pub fn energy_j(&self) -> f64 {
        f64::from_bits(self.energy_bits)
    }
}

/// Digest of a [`MissionOutcome`]'s complete observable state (FNV-1a
/// over every field, traces included). Two outcomes digest equal iff a
/// bit-for-bit replay reproduced the mission — this is what `done`
/// frames carry in place of the whole outcome.
pub fn outcome_digest(outcome: &MissionOutcome) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        fn bytes(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        fn u64(&mut self, v: u64) {
            self.bytes(&v.to_le_bytes());
        }
    }
    let mut h = Fnv(0xCBF2_9CE4_8422_2325);
    h.u64(u64::from(outcome.success));
    h.u64(outcome.steps);
    h.u64(u64::from(outcome.plans));
    h.u64(outcome.ldo_switches);
    h.u64(outcome.entropy_spikes);
    h.u64(outcome.ad.checked);
    h.u64(outcome.ad.cleared);
    h.u64(outcome.scheme_events.applications);
    h.u64(outcome.scheme_events.redundant_executions);
    h.u64(outcome.scheme_events.residuals);
    h.u64(outcome.energy_j().to_bits());
    h.u64(outcome.compute_j().to_bits());
    h.u64(outcome.entropy_trace.len() as u64);
    for &v in &outcome.entropy_trace {
        h.bytes(&v.to_bits().to_le_bytes());
    }
    h.u64(outcome.predicted_trace.len() as u64);
    for &v in &outcome.predicted_trace {
        h.bytes(&v.to_bits().to_le_bytes());
    }
    h.u64(outcome.voltage_trace.len() as u64);
    for &v in &outcome.voltage_trace {
        h.u64(v.to_bits());
    }
    h.0
}

/// A client-to-server line.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMsg {
    /// Run one mission.
    Submit {
        /// Client-chosen correlation id, echoed on the response.
        client_id: u64,
        /// Task to run.
        task: TaskId,
        /// Mission configuration.
        config: WireConfig,
    },
    /// Liveness probe; the server answers `pong`.
    Ping,
    /// Graceful goodbye; the server finishes in-flight work and closes.
    Bye,
}

impl ClientMsg {
    /// Renders the line (frame payload).
    pub fn render(&self) -> String {
        match self {
            ClientMsg::Submit {
                client_id,
                task,
                config,
            } => format!(
                "submit {client_id} {} {}",
                task_name(*task),
                config.render()
            ),
            ClientMsg::Ping => "ping".to_string(),
            ClientMsg::Bye => "bye".to_string(),
        }
    }

    /// Parses one frame payload into a client line.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for non-text payloads, unknown verbs and
    /// malformed arguments.
    pub fn parse(payload: &[u8]) -> Result<ClientMsg, WireError> {
        let text = std::str::from_utf8(payload).map_err(|_| WireError::NotText)?;
        let mut words = text.split_ascii_whitespace();
        match words.next() {
            Some("submit") => {
                let bad = |detail: String| WireError::BadArgument {
                    command: "submit",
                    detail,
                };
                let client_id = words
                    .next()
                    .and_then(|w| w.parse::<u64>().ok())
                    .ok_or_else(|| bad("expected a numeric client id".to_string()))?;
                let task_word = words
                    .next()
                    .ok_or_else(|| bad("expected a task name".to_string()))?;
                let task = parse_task(task_word)
                    .ok_or_else(|| bad(format!("unknown task '{task_word}'")))?;
                let config_word = words
                    .next()
                    .ok_or_else(|| bad("expected a config".to_string()))?;
                let config = WireConfig::parse(config_word).map_err(bad)?;
                if words.next().is_some() {
                    return Err(bad("trailing words".to_string()));
                }
                Ok(ClientMsg::Submit {
                    client_id,
                    task,
                    config,
                })
            }
            Some("ping") => Ok(ClientMsg::Ping),
            Some("bye") => Ok(ClientMsg::Bye),
            Some(other) => Err(WireError::UnknownCommand(other.to_string())),
            None => Err(WireError::UnknownCommand(String::new())),
        }
    }
}

/// A server-to-client line.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerMsg {
    /// A completed mission.
    Done(NetOutcome),
    /// A refused submission, with the typed reason.
    Rejected {
        /// The correlation id of the refused submit.
        client_id: u64,
        /// Why it was refused.
        reason: NetReject,
    },
    /// A serving-layer failure (the mission never completed).
    Failed {
        /// The correlation id of the failed submit.
        client_id: u64,
        /// The typed failure.
        failure: ServeFailure,
    },
    /// The peer's last frame was invalid; carries the rendered
    /// [`WireError`] text.
    Error(String),
    /// Liveness answer.
    Pong,
    /// Goodbye: the server is draining this connection; no further
    /// responses will follow.
    Bye,
}

impl ServerMsg {
    /// The `error` line for a typed wire error.
    pub fn error(e: &WireError) -> ServerMsg {
        ServerMsg::Error(e.to_string())
    }

    /// Renders the line (frame payload).
    pub fn render(&self) -> String {
        match self {
            ServerMsg::Done(o) => format!(
                "done {} {} {} {} {} {} {} {:016x} {:016x}",
                o.client_id,
                o.request_id,
                o.seed,
                o.attempts,
                u8::from(o.success),
                o.steps,
                o.plans,
                o.energy_bits,
                o.digest
            ),
            ServerMsg::Rejected { client_id, reason } => {
                format!("rejected {client_id} {}", reason.render())
            }
            ServerMsg::Failed { client_id, failure } => {
                format!("failed {client_id} {}", render_failure(*failure))
            }
            ServerMsg::Error(detail) => format!("error {detail}"),
            ServerMsg::Pong => "pong".to_string(),
            ServerMsg::Bye => "bye".to_string(),
        }
    }

    /// Parses one frame payload into a server line.
    ///
    /// # Errors
    ///
    /// Typed [`WireError`]s for non-text payloads, unknown verbs and
    /// malformed arguments.
    pub fn parse(payload: &[u8]) -> Result<ServerMsg, WireError> {
        let text = std::str::from_utf8(payload).map_err(|_| WireError::NotText)?;
        let mut words = text.split_ascii_whitespace();
        match words.next() {
            Some("done") => {
                let bad = |detail: String| WireError::BadArgument {
                    command: "done",
                    detail,
                };
                let mut next_u64 = |what: &str, hex: bool| -> Result<u64, WireError> {
                    let word = words.next().ok_or_else(|| bad(format!("missing {what}")))?;
                    let parsed = if hex {
                        u64::from_str_radix(word, 16)
                    } else {
                        word.parse::<u64>()
                    };
                    parsed.map_err(|_| bad(format!("bad {what} '{word}'")))
                };
                let client_id = next_u64("client id", false)?;
                let request_id = next_u64("request id", false)?;
                let seed = next_u64("seed", false)?;
                let attempts = next_u64("attempts", false)? as u32;
                let success = match next_u64("success flag", false)? {
                    0 => false,
                    1 => true,
                    other => return Err(bad(format!("success flag must be 0/1, got {other}"))),
                };
                let steps = next_u64("steps", false)?;
                let plans = next_u64("plans", false)? as u32;
                let energy_bits = next_u64("energy bits", true)?;
                let digest = next_u64("digest", true)?;
                Ok(ServerMsg::Done(NetOutcome {
                    client_id,
                    request_id,
                    seed,
                    attempts,
                    success,
                    steps,
                    plans,
                    energy_bits,
                    digest,
                }))
            }
            Some("rejected") => {
                let bad = |detail: String| WireError::BadArgument {
                    command: "rejected",
                    detail,
                };
                let client_id = words
                    .next()
                    .and_then(|w| w.parse::<u64>().ok())
                    .ok_or_else(|| bad("expected a numeric client id".to_string()))?;
                let reason_word = words
                    .next()
                    .ok_or_else(|| bad("expected a reason".to_string()))?;
                let reason = NetReject::parse(reason_word).map_err(bad)?;
                Ok(ServerMsg::Rejected { client_id, reason })
            }
            Some("failed") => {
                let bad = |detail: String| WireError::BadArgument {
                    command: "failed",
                    detail,
                };
                let client_id = words
                    .next()
                    .and_then(|w| w.parse::<u64>().ok())
                    .ok_or_else(|| bad("expected a numeric client id".to_string()))?;
                let kind_word = words
                    .next()
                    .ok_or_else(|| bad("expected a failure kind".to_string()))?;
                let failure = parse_failure(kind_word).map_err(bad)?;
                Ok(ServerMsg::Failed { client_id, failure })
            }
            Some("error") => {
                let text = text.trim_start();
                Ok(ServerMsg::Error(
                    text.strip_prefix("error")
                        .expect("verb matched")
                        .trim_start()
                        .to_string(),
                ))
            }
            Some("pong") => Ok(ServerMsg::Pong),
            Some("bye") => Ok(ServerMsg::Bye),
            Some(other) => Err(WireError::UnknownCommand(other.to_string())),
            None => Err(WireError::UnknownCommand(String::new())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_scanner() {
        let a = frame(b"submit 0 wooden golden");
        let b = frame(b"ping");
        let stream: Vec<u8> = [a.clone(), b.clone()].concat();
        let (payloads, clean, fault) = scan_stream(&stream);
        assert_eq!(
            payloads,
            vec![b"submit 0 wooden golden".to_vec(), b"ping".to_vec()]
        );
        assert_eq!(clean, stream.len());
        assert_eq!(fault, None);
    }

    #[test]
    fn torn_and_corrupt_streams_fault_without_panicking() {
        let full = frame(b"ping");
        let (payloads, clean, fault) = scan_stream(&full[..full.len() - 1]);
        assert!(payloads.is_empty());
        assert_eq!(clean, 0);
        assert_eq!(
            fault,
            Some(WireError::Torn {
                have: full.len() - 1
            })
        );

        let mut corrupt = full.clone();
        *corrupt.last_mut().expect("non-empty") ^= 0xFF;
        let (payloads, _, fault) = scan_stream(&corrupt);
        assert!(payloads.is_empty());
        assert!(matches!(fault, Some(WireError::Corrupt { .. })));

        let mut oversize = full;
        oversize[..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        let (_, _, fault) = scan_stream(&oversize);
        assert_eq!(
            fault,
            Some(WireError::Oversize {
                len: MAX_PAYLOAD + 1
            })
        );
    }

    #[test]
    fn client_lines_round_trip() {
        let msgs = [
            ClientMsg::Submit {
                client_id: 42,
                task: TaskId::Wooden,
                config: WireConfig::Golden,
            },
            ClientMsg::Submit {
                client_id: 7,
                task: TaskId::Log,
                config: WireConfig::Undervolted(0.86),
            },
            ClientMsg::Ping,
            ClientMsg::Bye,
        ];
        for msg in msgs {
            assert_eq!(ClientMsg::parse(msg.render().as_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn server_lines_round_trip() {
        let msgs = [
            ServerMsg::Done(NetOutcome {
                client_id: 3,
                request_id: 17,
                seed: u64::MAX,
                attempts: 2,
                success: true,
                steps: 940,
                plans: 4,
                energy_bits: 1.25e-3f64.to_bits(),
                digest: 0xDEAD_BEEF_0BAD_CAFE,
            }),
            ServerMsg::Rejected {
                client_id: 9,
                reason: NetReject::QueueFull { capacity: 256 },
            },
            ServerMsg::Rejected {
                client_id: 9,
                reason: NetReject::Overloaded { in_flight: 32 },
            },
            ServerMsg::Rejected {
                client_id: 1,
                reason: NetReject::ShuttingDown,
            },
            ServerMsg::Rejected {
                client_id: 1,
                reason: NetReject::DeadlineExpired,
            },
            ServerMsg::Failed {
                client_id: 5,
                failure: ServeFailure::Panicked,
            },
            ServerMsg::Failed {
                client_id: 5,
                failure: ServeFailure::DeadlineExpired,
            },
            ServerMsg::Error("frame payload is not utf-8 text".to_string()),
            ServerMsg::Pong,
            ServerMsg::Bye,
        ];
        for msg in msgs {
            assert_eq!(ServerMsg::parse(msg.render().as_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn undervolted_voltage_survives_the_text_protocol_exactly() {
        for &v in &[0.90f64, 0.86, 0.825, 0.8200000000000001] {
            let msg = ClientMsg::Submit {
                client_id: 0,
                task: TaskId::Stone,
                config: WireConfig::Undervolted(v),
            };
            let ClientMsg::Submit { config, .. } =
                ClientMsg::parse(msg.render().as_bytes()).unwrap()
            else {
                panic!("parsed to a different verb");
            };
            let WireConfig::Undervolted(parsed) = config else {
                panic!("parsed to a different config");
            };
            assert_eq!(parsed.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(matches!(
            ClientMsg::parse(b"launch 1 wooden golden"),
            Err(WireError::UnknownCommand(v)) if v == "launch"
        ));
        assert!(matches!(
            ClientMsg::parse(b"submit x wooden golden"),
            Err(WireError::BadArgument {
                command: "submit",
                ..
            })
        ));
        assert!(matches!(
            ClientMsg::parse(b"submit 1 floatworld golden"),
            Err(WireError::BadArgument {
                command: "submit",
                ..
            })
        ));
        assert!(matches!(
            ClientMsg::parse(b"submit 1 wooden undervolted:-2"),
            Err(WireError::BadArgument {
                command: "submit",
                ..
            })
        ));
        assert!(matches!(
            ClientMsg::parse(&[0xFF, 0xFE, 0x80]),
            Err(WireError::NotText)
        ));
        assert!(matches!(
            ServerMsg::parse(b"done 1 2 3"),
            Err(WireError::BadArgument {
                command: "done",
                ..
            })
        ));
    }

    #[test]
    fn every_task_name_round_trips() {
        for task in TaskId::ALL {
            assert_eq!(parse_task(&task_name(task)), Some(task), "{task:?}");
        }
        assert_eq!(parse_task("not-a-task"), None);
    }
}
