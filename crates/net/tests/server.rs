//! Functional tests for the TCP front-end: round-trip + offline replay,
//! typed answers for malformed and damaged frames without losing the
//! listener, slow-loris disconnection, in-flight back-pressure, typed
//! queue-full rejection, and the graceful goodbye on drain.

use create_core::mission::MissionSession;
use create_core::testutil::tiny_deployment;
use create_net::wire::{frame, outcome_digest, scan_stream, ClientMsg, ServerMsg};
use create_net::{
    NetClient, NetClientConfig, NetConfig, NetReject, NetResponse, NetServer, WireConfig,
};
use create_serve::{MissionEngine, ServeConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine + server on an ephemeral loopback port, chaos off.
fn quiet_stack(
    workers: usize,
    queue: usize,
) -> (Arc<MissionEngine>, NetServer, create_env::TaskId) {
    let (dep, task) = tiny_deployment();
    let engine = Arc::new(MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(workers)
            .queue(queue)
            .base_seed(2026)
            .chaos(0.0)
            .governor(None)
            .build(),
    ));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetConfig::builder().addr("127.0.0.1:0").chaos(0.0).build(),
    )
    .expect("bind loopback");
    (engine, server, task)
}

/// Reads server frames from a raw socket until `stop` says done or the
/// connection closes; returns the parsed replies.
fn read_replies(
    stream: &mut TcpStream,
    mut stop: impl FnMut(&[ServerMsg]) -> bool,
) -> Vec<ServerMsg> {
    let mut bytes = Vec::new();
    let mut chunk = [0u8; 4096];
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (payloads, _, _) = scan_stream(&bytes);
        let replies: Vec<ServerMsg> = payloads
            .iter()
            .map(|p| ServerMsg::parse(p).expect("server speaks its own grammar"))
            .collect();
        if stop(&replies) {
            return replies;
        }
        assert!(
            Instant::now() < deadline,
            "no stop condition after 30s: {replies:?}"
        );
        match stream.read(&mut chunk) {
            Ok(0) => {
                let (payloads, _, _) = scan_stream(&bytes);
                return payloads
                    .iter()
                    .map(|p| ServerMsg::parse(p).expect("server speaks its own grammar"))
                    .collect();
            }
            Ok(n) => bytes.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

#[test]
fn missions_round_trip_and_replay_bit_identically_offline() {
    let (dep, task) = tiny_deployment();
    let engine = Arc::new(MissionEngine::start(
        Arc::new(dep.clone()),
        ServeConfig::builder()
            .workers(2)
            .queue(16)
            .base_seed(2026)
            .chaos(0.0)
            .governor(None)
            .build(),
    ));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetConfig::builder().addr("127.0.0.1:0").chaos(0.0).build(),
    )
    .expect("bind loopback");

    let mut client = NetClient::connect(server.local_addr().to_string());
    let configs = [
        WireConfig::Golden,
        WireConfig::Undervolted(0.90),
        WireConfig::Undervolted(0.86),
    ];
    let mut done = Vec::new();
    for &config in &configs {
        match client.call(task, config).expect("call resolves") {
            NetResponse::Done(outcome) => done.push((config, outcome)),
            other => panic!("quiet stack must complete missions, got {other:?}"),
        }
    }
    client.goodbye();
    let stats = server.shutdown();
    assert_eq!(stats.responses, configs.len() as u64);
    assert_eq!(stats.wire_errors, 0);
    assert_eq!(stats.chaos_injected, 0);
    assert_eq!(stats.panicked_connections, 0);

    // Offline replay at the recorded seeds: digests and exact energy
    // bits must match what crossed the wire.
    let mut session = MissionSession::new(&dep);
    for (config, outcome) in done {
        let replayed = session.run(task, &config.to_config(), outcome.seed);
        assert_eq!(
            outcome_digest(&replayed),
            outcome.digest,
            "digest drift at {config:?}"
        );
        assert_eq!(replayed.energy_j().to_bits(), outcome.energy_bits);
        assert_eq!(replayed.success, outcome.success);
        assert_eq!(replayed.steps, outcome.steps);
        assert_eq!(replayed.plans, outcome.plans);
    }
    Arc::try_unwrap(engine)
        .map_err(|_| "engine still shared")
        .expect("server released its engine handle")
        .shutdown();
}

#[test]
fn malformed_lines_get_typed_errors_and_the_connection_survives() {
    let (_engine, server, task) = quiet_stack(1, 8);
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    // Unknown verb: typed error, connection stays usable.
    stream
        .write_all(&frame(b"launch 1 wooden golden"))
        .expect("write");
    // Bad argument on a known verb: another typed error.
    stream
        .write_all(&frame(b"submit not-a-number wooden golden"))
        .expect("write");
    // Then a valid ping: the same connection must still answer.
    stream
        .write_all(&frame(ClientMsg::Ping.render().as_bytes()))
        .expect("write");
    let replies = read_replies(&mut stream, |r| r.len() >= 3);
    assert!(matches!(&replies[0], ServerMsg::Error(d) if d.contains("unknown command 'launch'")));
    assert!(matches!(&replies[1], ServerMsg::Error(d) if d.contains("bad 'submit' arguments")));
    assert_eq!(replies[2], ServerMsg::Pong);

    // A CRC-corrupt frame: typed error, then the server hangs up (frame
    // boundaries are unrecoverable), but the listener survives.
    let mut damaged = frame(ClientMsg::Ping.render().as_bytes());
    let last = damaged.len() - 1;
    damaged[last] ^= 0xFF;
    stream.write_all(&damaged).expect("write");
    let replies = read_replies(&mut stream, |r| {
        r.iter().any(|m| matches!(m, ServerMsg::Bye))
    });
    assert!(
        replies
            .iter()
            .any(|m| matches!(m, ServerMsg::Error(d) if d.contains("checksum mismatch"))),
        "{replies:?}"
    );
    assert!(matches!(replies.last(), Some(ServerMsg::Bye)));

    // Fresh connection, full mission: the listener never went down.
    let mut client = NetClient::connect(addr.to_string());
    assert!(matches!(
        client.call(task, WireConfig::Golden).expect("resolves"),
        NetResponse::Done(_)
    ));
    client.goodbye();
    let stats = server.shutdown();
    assert_eq!(stats.wire_errors, 3);
    assert_eq!(stats.panicked_connections, 0);
}

#[test]
fn slow_loris_connections_are_disconnected_with_a_typed_torn_error() {
    let (dep, task) = tiny_deployment();
    let engine = Arc::new(MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(8)
            .chaos(0.0)
            .governor(None)
            .build(),
    ));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetConfig::builder()
            .addr("127.0.0.1:0")
            .idle(Duration::from_millis(100))
            .chaos(0.0)
            .build(),
    )
    .expect("bind loopback");

    // Open a frame and stall: send only half of it, then hold the
    // connection open without completing the frame.
    let full = frame(ClientMsg::Ping.render().as_bytes());
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .write_all(&full[..full.len() / 2])
        .expect("write half");
    let replies = read_replies(&mut stream, |r| {
        r.iter().any(|m| matches!(m, ServerMsg::Bye))
    });
    assert!(
        replies
            .iter()
            .any(|m| matches!(m, ServerMsg::Error(d) if d.contains("torn frame"))),
        "{replies:?}"
    );

    // The listener survived the loris; a real client still gets served.
    let mut client = NetClient::connect(server.local_addr().to_string());
    assert!(matches!(
        client.call(task, WireConfig::Golden).expect("resolves"),
        NetResponse::Done(_)
    ));
    client.goodbye();
    let stats = server.shutdown();
    assert_eq!(stats.wire_errors, 1);
}

#[test]
fn inflight_cap_applies_backpressure_and_every_submit_resolves() {
    let (dep, task) = tiny_deployment();
    let engine = Arc::new(MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(128)
            .chaos(0.0)
            .governor(None)
            .build(),
    ));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetConfig::builder()
            .addr("127.0.0.1:0")
            .inflight(4)
            .chaos(0.0)
            .build(),
    )
    .expect("bind loopback");

    // Burst 64 submits without reading a single response: the reader
    // parses far faster than one worker can run missions, so the cap
    // must fire; and every one of the 64 must still resolve exactly
    // once, as done or as a typed overload rejection.
    const BURST: u64 = 64;
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    for client_id in 0..BURST {
        let line = ClientMsg::Submit {
            client_id,
            task,
            config: WireConfig::Golden,
        };
        stream
            .write_all(&frame(line.render().as_bytes()))
            .expect("write");
    }
    let replies = read_replies(&mut stream, |r| r.len() >= BURST as usize);
    let mut resolved = std::collections::HashMap::<u64, u32>::new();
    let (mut done, mut overloaded) = (0u64, 0u64);
    for reply in &replies[..BURST as usize] {
        match reply {
            ServerMsg::Done(o) => {
                done += 1;
                *resolved.entry(o.client_id).or_default() += 1;
            }
            ServerMsg::Rejected {
                client_id,
                reason: NetReject::Overloaded { in_flight },
            } => {
                overloaded += 1;
                assert_eq!(*in_flight, 4);
                *resolved.entry(*client_id).or_default() += 1;
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(done + overloaded, BURST);
    assert!(overloaded > 0, "cap never fired across a 64-submit burst");
    assert!(done >= 4, "at least the first in-flight window completes");
    assert_eq!(resolved.len() as u64, BURST, "every client id resolved");
    assert!(resolved.values().all(|&n| n == 1), "exactly once each");

    drop(stream);
    let stats = server.shutdown();
    assert_eq!(stats.responses + stats.overloaded, BURST);
    assert_eq!(stats.overloaded, overloaded);
}

#[test]
fn queue_full_and_shutting_down_cross_the_wire_typed() {
    // A zero-capacity queue admits nothing: every wire submit must come
    // back as the engine's typed queue-full rejection.
    let (dep, task) = tiny_deployment();
    let engine = Arc::new(MissionEngine::start(
        Arc::new(dep),
        ServeConfig::builder()
            .workers(1)
            .queue(0)
            .chaos(0.0)
            .governor(None)
            .build(),
    ));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetConfig::builder().addr("127.0.0.1:0").chaos(0.0).build(),
    )
    .expect("bind loopback");

    let mut config = NetClientConfig::new(server.local_addr().to_string());
    config.retries = 2;
    config.backoff = Duration::from_millis(1);
    let mut client = NetClient::with_config(config);
    match client.call(task, WireConfig::Golden).expect("resolves") {
        NetResponse::Rejected(NetReject::QueueFull { capacity }) => assert_eq!(capacity, 0),
        other => panic!("expected queue-full, got {other:?}"),
    }

    // Close the engine: subsequent submits are typed shutting-down, and
    // the client treats that as terminal (no futile retry loop).
    engine.close();
    match client.call(task, WireConfig::Golden).expect("resolves") {
        NetResponse::Rejected(NetReject::ShuttingDown) => {}
        other => panic!("expected shutting-down, got {other:?}"),
    }
    client.goodbye();
    server.shutdown();
}

#[test]
fn drain_says_goodbye_on_open_connections() {
    let (_engine, server, task) = quiet_stack(1, 8);
    let addr = server.local_addr();

    // An established connection with a served mission on it...
    let mut stream = TcpStream::connect(addr).expect("connect");
    let line = ClientMsg::Submit {
        client_id: 0,
        task,
        config: WireConfig::Golden,
    };
    stream
        .write_all(&frame(line.render().as_bytes()))
        .expect("write");
    let replies = read_replies(&mut stream, |r| !r.is_empty());
    assert!(matches!(replies[0], ServerMsg::Done(_)));

    // ...receives a goodbye frame when the server drains, then EOF.
    let shutdown = std::thread::spawn(move || server.shutdown());
    let replies = read_replies(&mut stream, |r| {
        r.iter().any(|m| matches!(m, ServerMsg::Bye))
    });
    assert!(
        matches!(replies.last(), Some(ServerMsg::Bye)),
        "{replies:?}"
    );
    let stats = shutdown.join().expect("shutdown thread");
    assert_eq!(stats.responses, 1);

    // And the port no longer accepts new work. (If the OS briefly
    // accepts before the closed listener is torn down, the connection
    // must be dead on arrival: no reply, just EOF or an error.)
    match TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut s) => {
            s.set_read_timeout(Some(Duration::from_millis(200)))
                .expect("timeout");
            let _ = s.write_all(&frame(b"ping"));
            let mut buf = [0u8; 64];
            assert!(
                matches!(s.read(&mut buf), Ok(0) | Err(_)),
                "drained server answered new work"
            );
        }
    }
}
