//! The chaos soak: concurrent clients against a front-end with both
//! network chaos (`CREATE_NET_CHAOS`, default 0.25 here) and engine
//! chaos (`CREATE_SERVE_CHAOS`, default 0.1 here) enabled, proving the
//! issue's acceptance contract end to end:
//!
//! * every request resolves **exactly once** client-side — a completed
//!   mission, a typed rejection, or a typed failure; no hangs, no
//!   duplicates, no silent drops;
//! * the server drains cleanly afterwards (goodbyes, joined threads);
//! * every successful outcome replays **bit-identically** offline at
//!   its recorded `(request id, seed)` — dropped, torn and stalled
//!   responses plus reconnect-and-resubmit never corrupt the replay
//!   contract.
//!
//! CI runs this with the env pinned (`net-smoke`); locally it defaults
//! to the same probabilities.

use create_core::mission::MissionSession;
use create_core::testutil::tiny_deployment;
use create_net::wire::outcome_digest;
use create_net::{NetClient, NetClientConfig, NetConfig, NetResponse, NetServer, WireConfig};
use create_serve::{MissionEngine, ServeConfig};
use create_tensor::envcfg;
use std::sync::Arc;
use std::time::Duration;

const CLIENTS: u64 = 4;
const REQUESTS_PER_CLIENT: u64 = 12;

#[test]
fn chaos_soak_resolves_every_request_exactly_once_and_replays() {
    let net_chaos = envcfg::read_fraction("CREATE_NET_CHAOS", 0.25);
    let serve_chaos = envcfg::read_fraction("CREATE_SERVE_CHAOS", 0.1);

    let (dep, task) = tiny_deployment();
    let engine = Arc::new(MissionEngine::start(
        Arc::new(dep.clone()),
        ServeConfig::builder()
            .workers(4)
            .queue(64)
            .base_seed(2026)
            .chaos(serve_chaos)
            .governor(None)
            .build(),
    ));
    let server = NetServer::start(
        Arc::clone(&engine),
        NetConfig::builder()
            .addr("127.0.0.1:0")
            .chaos(net_chaos)
            .chaos_stall(Duration::from_millis(50))
            .build(),
    )
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    // The per-client request mix: alternating golden / undervolted
    // corners, all on the deployment's trained task.
    let configs = [
        WireConfig::Golden,
        WireConfig::Undervolted(0.90),
        WireConfig::Undervolted(0.86),
    ];

    // Per client: (client index, resolved (config, response) pairs,
    // transport faults survived).
    type ClientReport = (usize, Vec<(WireConfig, NetResponse)>, u64);
    let results: Vec<ClientReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut config = NetClientConfig::new(addr);
                    config.retries = 16;
                    config.backoff = Duration::from_millis(2);
                    config.read_timeout = Duration::from_secs(20);
                    config.seed = 0x50AC_D00D ^ c;
                    let mut client = NetClient::with_config(config);
                    let mut resolved = Vec::new();
                    for i in 0..REQUESTS_PER_CLIENT {
                        let wire = configs[(i % configs.len() as u64) as usize];
                        let response = client
                            .call(task, wire)
                            .expect("retry budget absorbs chaos at p=0.25");
                        resolved.push((wire, response));
                    }
                    let faults = client.transport_faults();
                    client.goodbye();
                    (c as usize, resolved, faults)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    // Exactly once: every client resolved every request.
    let mut transport_faults = 0;
    let mut done = Vec::new();
    let (mut completions, mut rejections, mut failures) = (0u64, 0u64, 0u64);
    for (client, resolved, faults) in results {
        assert_eq!(
            resolved.len() as u64,
            REQUESTS_PER_CLIENT,
            "client {client} lost requests"
        );
        transport_faults += faults;
        for (wire, response) in resolved {
            match response {
                NetResponse::Done(outcome) => {
                    completions += 1;
                    done.push((wire, outcome));
                }
                NetResponse::Rejected(_) => rejections += 1,
                NetResponse::Failed(_) => failures += 1,
            }
        }
    }
    assert_eq!(
        completions + rejections + failures,
        CLIENTS * REQUESTS_PER_CLIENT
    );
    assert!(completions > 0, "chaos at p<1 must let missions through");

    // No duplicate server-side identities among completions: each
    // carries a distinct (request id, seed) pair even though client ids
    // were reused across retries and clients.
    let mut ids: Vec<u64> = done.iter().map(|(_, o)| o.request_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), done.len(), "request ids duplicated");

    // Clean drain with chaos still configured.
    let stats = server.shutdown();
    assert_eq!(stats.panicked_connections, 0);
    if net_chaos > 0.1 {
        assert!(
            stats.chaos_injected > 0,
            "soak scale must exercise the chaos sites"
        );
        assert!(
            transport_faults > 0,
            "clients must have reconnected through chaos"
        );
    }
    drop(engine);

    // Bit-identical offline replay of every completion that crossed the
    // wire, at its recorded seed.
    let mut session = MissionSession::new(&dep);
    for (wire, outcome) in done {
        let replayed = session.run(task, &wire.to_config(), outcome.seed);
        assert_eq!(
            outcome_digest(&replayed),
            outcome.digest,
            "replay drift at seed {}",
            outcome.seed
        );
        assert_eq!(replayed.energy_j().to_bits(), outcome.energy_bits);
        assert_eq!(replayed.success, outcome.success);
    }
}
