//! Exhaustive `Display`/`Error` coverage for every typed failure that
//! can cross a process or network boundary: the engine's
//! [`RejectReason`] and [`ServeFailure`], the wire's [`WireError`] and
//! [`NetReject`], and the client's [`NetError`]. Every variant must
//! render human words — no `{:?}` debug spellings leaking into wire
//! text — and every error type must wire into `std::error::Error`.

use create_net::{NetError, NetReject, WireError};
use create_serve::{MissionRequest, RejectReason, Rejected, ServeFailure};
use std::error::Error;

/// Every variant of every boundary-crossing failure enum, paired with a
/// word its rendering must contain (the human description, not the
/// variant name).
fn all_renderings() -> Vec<(String, &'static str, String)> {
    let reject_reasons = [
        (RejectReason::QueueFull { capacity: 7 }, "queue full"),
        (RejectReason::ShuttingDown, "shutting down"),
        (RejectReason::DeadlineExpired, "deadline expired"),
    ];
    let serve_failures = [
        (ServeFailure::Panicked, "panicked"),
        (ServeFailure::DeadlineExpired, "deadline expired"),
    ];
    let wire_errors = [
        (WireError::Torn { have: 3 }, "torn frame"),
        (
            WireError::Corrupt {
                expected: 0xDEAD_BEEF,
                found: 0x0BAD_F00D,
            },
            "checksum mismatch",
        ),
        (WireError::Oversize { len: 1 << 20 }, "cap"),
        (WireError::NotText, "utf-8"),
        (
            WireError::UnknownCommand("launch".to_string()),
            "unknown command",
        ),
        (
            WireError::BadArgument {
                command: "submit",
                detail: "expected a task name".to_string(),
            },
            "bad 'submit' arguments",
        ),
    ];
    let net_rejects = [
        (NetReject::QueueFull { capacity: 7 }, "queue full"),
        (NetReject::ShuttingDown, "shutting down"),
        (NetReject::DeadlineExpired, "deadline expired"),
        (NetReject::Overloaded { in_flight: 32 }, "in-flight cap"),
    ];
    let net_errors = [(
        NetError::Exhausted {
            client_id: 3,
            attempts: 9,
            last: "connection closed by server".to_string(),
        },
        "abandoned",
    )];

    let mut out = Vec::new();
    for (v, needle) in reject_reasons {
        out.push((format!("{v}"), needle, format!("{v:?}")));
    }
    for (v, needle) in serve_failures {
        out.push((format!("{v}"), needle, format!("{v:?}")));
    }
    for (v, needle) in wire_errors {
        out.push((format!("{v}"), needle, format!("{v:?}")));
    }
    for (v, needle) in net_rejects {
        out.push((format!("{v}"), needle, format!("{v:?}")));
    }
    for (v, needle) in net_errors {
        out.push((format!("{v}"), needle, format!("{v:?}")));
    }
    out
}

#[test]
fn every_variant_renders_human_words() {
    for (rendered, needle, debug) in all_renderings() {
        assert!(!rendered.is_empty(), "{debug} renders empty");
        assert!(
            rendered.contains(needle),
            "{debug} renders {rendered:?}, expected it to contain {needle:?}"
        );
        // No debug leakage: a Display rendering must not contain the
        // CamelCase variant spelling or struct-ish punctuation.
        let variant = debug
            .split(|c: char| !c.is_ascii_alphanumeric())
            .next()
            .unwrap_or_default();
        assert!(
            !rendered.contains(variant),
            "{debug} leaks its variant name into wire text: {rendered:?}"
        );
        for token in ["{", "}", "\n"] {
            assert!(
                !rendered.contains(token),
                "{debug} leaks {token:?} into wire text: {rendered:?}"
            );
        }
    }
}

#[test]
fn every_failure_type_is_a_std_error() {
    let errors: Vec<Box<dyn Error>> = vec![
        Box::new(RejectReason::ShuttingDown),
        Box::new(ServeFailure::Panicked),
        Box::new(WireError::NotText),
        Box::new(NetReject::ShuttingDown),
        Box::new(NetError::Exhausted {
            client_id: 0,
            attempts: 1,
            last: "x".to_string(),
        }),
    ];
    for e in errors {
        assert!(!e.to_string().is_empty());
    }
}

/// The engine's `Rejected` must chain to its reason as `source`, so a
/// generic error reporter walks from "request rejected" down to the
/// typed cause.
#[test]
fn rejected_chains_to_its_reason() {
    let (_, task) = create_core::testutil::tiny_deployment();
    let rejected = Rejected {
        request: MissionRequest::new(task, create_core::config::CreateConfig::golden()),
        reason: RejectReason::QueueFull { capacity: 3 },
    };
    let msg = rejected.to_string();
    assert!(msg.contains("rejected"), "{msg:?}");
    let source = rejected.source().expect("reason is the source");
    assert_eq!(source.to_string(), "request queue full (capacity 3)");
}
