//! Property tests for the wire-frame codec, mirroring the journal
//! codec's: round-trips, truncation always recovers the valid frame
//! prefix with a typed torn fault, and corruption anywhere never panics,
//! never invents a frame and never passes silently.
//!
//! The vendored proptest shim has no combinators, so payloads derive
//! deterministically from drawn `u64` words.

use create_net::wire::{frame, scan_stream, WireError, FRAME_HEADER_LEN};
use proptest::prelude::*;

/// Expands one drawn word into a payload of up to 95 derived bytes
/// (realistic wire lines are well under that).
fn payload_from(word: u64) -> Vec<u8> {
    let len = ((word >> 32) % 96) as usize;
    (0..len)
        .map(|j| word.rotate_left(j as u32 * 11) as u8)
        .collect()
}

fn payloads_from(words: &[u64]) -> Vec<Vec<u8>> {
    words.iter().copied().map(payload_from).collect()
}

fn render(payloads: &[Vec<u8>]) -> Vec<u8> {
    payloads.iter().flat_map(|p| frame(p)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_round_trip_through_a_scan(words in prop::collection::vec(any::<u64>(), 0..8)) {
        let payloads = payloads_from(&words);
        let bytes = render(&payloads);
        let (scanned, clean, fault) = scan_stream(&bytes);
        prop_assert_eq!(scanned, payloads);
        prop_assert_eq!(clean, bytes.len());
        prop_assert_eq!(fault, None);
    }

    #[test]
    fn any_truncation_recovers_a_frame_prefix_and_reports_torn(
        words in prop::collection::vec(any::<u64>(), 1..6),
        keep_fraction in 0.0f64..1.0,
    ) {
        let payloads = payloads_from(&words);
        let bytes = render(&payloads);
        let keep = (bytes.len() as f64 * keep_fraction) as usize;
        let (scanned, clean, fault) = scan_stream(&bytes[..keep]);
        // What survives is a prefix of what was sent...
        prop_assert!(scanned.len() <= payloads.len());
        prop_assert_eq!(&scanned[..], &payloads[..scanned.len()]);
        // ...and the torn fault fires exactly when the cut landed inside
        // a frame, reporting exactly the bytes that had arrived.
        match fault {
            None => prop_assert_eq!(clean, keep),
            Some(WireError::Torn { have }) => prop_assert_eq!(clean + have, keep),
            Some(other) => prop_assert!(false, "truncation produced {other:?}"),
        }
    }

    #[test]
    fn a_corrupt_byte_never_passes_silently(
        word in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let payload = payload_from(word);
        let clean = frame(&payload);
        let at = (flip % clean.len() as u64) as usize;
        let bit = 1u8 << ((flip >> 32) % 8);
        let mut bytes = clean.clone();
        bytes[at] ^= bit;
        // The scan must not panic, and must not decode the stream as the
        // original single clean frame: the flip is either caught (typed
        // fault) or changes what was decoded (shorter/different payload,
        // trailing torn bytes).
        let (scanned, clean_len, fault) = scan_stream(&bytes);
        let silently_fine =
            fault.is_none() && clean_len == bytes.len() && scanned == vec![payload.clone()];
        prop_assert!(!silently_fine, "flipped bit passed undetected at {at}");
    }

    #[test]
    fn every_single_byte_flip_in_a_small_frame_is_caught(word in any::<u64>()) {
        // Exhaustive over byte positions for one frame: any header or
        // body flip must surface as a typed fault or a torn tail — the
        // clean single-frame decode must be unreachable.
        let payload = payload_from(word);
        let clean = frame(&payload);
        for at in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x40;
            let (scanned, clean_len, fault) = scan_stream(&bytes);
            let silently_fine =
                fault.is_none() && clean_len == bytes.len() && scanned == vec![payload.clone()];
            prop_assert!(!silently_fine, "flip at byte {at} passed undetected");
        }
        // Sanity: the header is where lengths live; a length flip maps
        // to Torn/Oversize/Corrupt, all typed.
        let mut bytes = clean.clone();
        bytes[3] ^= 0x80; // high byte of the length field
        let (_, _, fault) = scan_stream(&bytes);
        prop_assert!(fault.is_some());
        let _ = FRAME_HEADER_LEN; // grammar constant stays exported
    }
}
