//! Baseline reliability techniques for the Sec. 6.10 comparison (Fig. 20).
//!
//! CREATE is compared against three representative prior-art schemes, each
//! modeled at the datapath level in [`create_accel::scheme`]:
//!
//! * **DMR** (dual modular redundancy, Tesla-FSD style): high reliability,
//!   ≥2× compute energy plus recovery recomputes.
//! * **ThUnderVolt**: timing-error detection with result skipping — cheap,
//!   but at low voltage the skipped ("pruned") outputs degrade task
//!   quality.
//! * **Razor-style timing borrowing** (extension — the paper cites this
//!   class [43–45] but does not evaluate it): shadow-FF detection with
//!   pipeline replay recovers detected values exactly, but carries the
//!   heaviest per-PE overhead and replay storms at low voltage.
//! * **ApproxABFT-style ABFT**: checksum detection + recompute recovery —
//!   effective at mild BER, but below ~0.85 V recompute storms dominate
//!   energy and residual errors leak through.
//!
//! This crate maps each baseline onto a mission [`CreateConfig`] so the
//! comparison harness runs all schemes through the *same* mission runner
//! and energy meter.

use create_accel::Scheme;
use create_core::config::{CreateConfig, ErrorSpec, VoltageControl};
use create_core::policy::EntropyPolicy;
use std::fmt;

/// One contender in the Fig. 20 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// No protection at all.
    Unprotected,
    /// Dual modular redundancy.
    Dmr,
    /// Timing-error detection + output skipping.
    ThunderVolt,
    /// Razor-style timing borrowing (extension contender).
    Razor,
    /// Checksum-based detection + recompute.
    Abft,
    /// The full CREATE stack (AD + WR + adaptive VS).
    Create,
}

impl BaselineKind {
    /// All contenders in reporting order.
    pub const ALL: [BaselineKind; 6] = [
        BaselineKind::Unprotected,
        BaselineKind::Dmr,
        BaselineKind::ThunderVolt,
        BaselineKind::Razor,
        BaselineKind::Abft,
        BaselineKind::Create,
    ];

    /// The accelerator scheme this baseline uses.
    pub fn scheme(self) -> Scheme {
        match self {
            BaselineKind::Dmr => Scheme::Dmr,
            BaselineKind::ThunderVolt => Scheme::ThunderVolt,
            BaselineKind::Razor => Scheme::Razor,
            BaselineKind::Abft => Scheme::Abft { max_retries: 3 },
            BaselineKind::Unprotected | BaselineKind::Create => Scheme::Plain,
        }
    }

    /// Builds the mission configuration for this baseline at supply
    /// voltage `v` (hardware error model on both units).
    pub fn config(self, v: f64) -> CreateConfig {
        let base = CreateConfig {
            planner_error: Some(ErrorSpec::voltage()),
            controller_error: Some(ErrorSpec::voltage()),
            planner_voltage: v,
            voltage: VoltageControl::Fixed(v),
            scheme: self.scheme(),
            ..CreateConfig::default()
        };
        match self {
            BaselineKind::Create => CreateConfig {
                planner_ad: true,
                controller_ad: true,
                wr: true,
                // CREATE additionally runs VS around the fixed point: the
                // policy is shifted so its middle level matches `v`.
                voltage: VoltageControl::adaptive(shifted_policy(v)),
                scheme: Scheme::Plain,
                ..base
            },
            _ => base,
        }
    }
}

impl fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BaselineKind::Unprotected => "Unprotected",
            BaselineKind::Dmr => "DMR",
            BaselineKind::ThunderVolt => "ThUnderVolt",
            BaselineKind::Razor => "Razor",
            BaselineKind::Abft => "ABFT",
            BaselineKind::Create => "CREATE",
        };
        f.write_str(s)
    }
}

/// An entropy policy whose middle voltage level equals `v` (±20 mV swing),
/// so CREATE's operating point is comparable to a fixed-voltage baseline
/// at `v`.
pub fn shifted_policy(v: f64) -> EntropyPolicy {
    let hi = (v + 0.02).min(0.9);
    let lo = (v - 0.02).max(0.6);
    EntropyPolicy::new(
        format!("create@{v:.2}"),
        vec![0.4, 1.0],
        vec![hi, v.clamp(0.6, 0.9), lo],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemes_map_correctly() {
        assert_eq!(BaselineKind::Dmr.scheme(), Scheme::Dmr);
        assert_eq!(BaselineKind::ThunderVolt.scheme(), Scheme::ThunderVolt);
        assert_eq!(BaselineKind::Razor.scheme(), Scheme::Razor);
        assert!(matches!(BaselineKind::Abft.scheme(), Scheme::Abft { .. }));
        assert_eq!(BaselineKind::Create.scheme(), Scheme::Plain);
    }

    #[test]
    fn create_config_enables_full_stack() {
        let c = BaselineKind::Create.config(0.80);
        assert!(c.planner_ad && c.controller_ad && c.wr);
        assert!(matches!(c.voltage, VoltageControl::Adaptive { .. }));
    }

    #[test]
    fn baselines_fix_voltage_and_disable_ad() {
        for kind in [
            BaselineKind::Dmr,
            BaselineKind::ThunderVolt,
            BaselineKind::Razor,
            BaselineKind::Abft,
        ] {
            let c = kind.config(0.82);
            assert!(!c.planner_ad && !c.controller_ad && !c.wr);
            assert_eq!(c.voltage, VoltageControl::Fixed(0.82));
            assert_eq!(c.planner_voltage, 0.82);
        }
    }

    #[test]
    fn shifted_policy_brackets_the_operating_point() {
        let p = shifted_policy(0.80);
        let vs = p.voltages();
        assert!(vs[0] > vs[2]);
        assert!((vs[1] - 0.80).abs() < 1e-9);
    }

    #[test]
    fn display_names_are_paper_names() {
        assert_eq!(BaselineKind::ThunderVolt.to_string(), "ThUnderVolt");
        assert_eq!(BaselineKind::Create.to_string(), "CREATE");
    }
}
