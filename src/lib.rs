//! # create-ai — CREATE, reproduced in Rust
//!
//! A full-system reproduction of **CREATE: Cross-Layer Resilience
//! Characterization and Optimization for Efficient yet Reliable Embodied AI
//! Systems** (ASPLOS 2026): an LLM-planner + RL-controller embodied agent
//! deployed on a simulated voltage-scaled INT8 systolic-array accelerator,
//! protected by anomaly detection (AD), weight-rotation-enhanced planning
//! (WR) and autonomy-adaptive voltage scaling (VS).
//!
//! This meta-crate re-exports the workspace:
//!
//! * [`tensor`] — matrices, quantization, Hadamard rotations, statistics
//! * [`accel`] — the systolic-array substrate: timing errors, injection,
//!   AD, LDO, energy/cycle models, protection schemes
//! * [`nn`] — trainable layers with manual backprop + quantized deployment
//! * [`env`](mod@env) — the craftworld (Minecraft-lite) and armworld (manipulation)
//!   environments with tasks and scripted experts
//! * [`agents`] — the planner, controller and entropy predictor
//! * [`baselines`] — DMR / ThUnderVolt / ABFT comparison configs
//! * [`core`] — the CREATE framework: configs, mission runner, policies,
//!   parallel statistics
//! * [`serve`] — the resident mission-serving engine: a warm session pool
//!   behind a bounded request queue with deterministic replay seeds
//!
//! # Quickstart
//!
//! ```no_run
//! use create_ai::prelude::*;
//!
//! // Train (or load from cache) the JARVIS-1 testbed, deploy at INT8, and
//! // run one protected undervolted mission.
//! let system = create_ai::agents::AgentSystem::jarvis();
//! let deployment = Deployment::new(&system, create_ai::tensor::Precision::Int8);
//! let config = CreateConfig::undervolted(0.84)
//!     .with_full_create(EntropyPolicy::preset_c());
//! let outcome = run_trial(&deployment, create_ai::env::TaskId::Wooden, &config, 7);
//! println!("success={} energy={:.2} J", outcome.success, outcome.energy_j());
//! ```

pub use create_accel as accel;
pub use create_agents as agents;
pub use create_baselines as baselines;
pub use create_core as core;
pub use create_env as env;
pub use create_nn as nn;
pub use create_serve as serve;
pub use create_tensor as tensor;

/// One-stop import for applications.
pub mod prelude {
    pub use create_core::prelude::*;
    pub use create_env::{Action, Subtask, TaskId, World};
    pub use create_tensor::Precision;
}
