//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored so the workspace builds without a registry.
//!
//! Supports `Criterion::default().sample_size(n)`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//! Instead of upstream's bootstrap statistics it reports min / median /
//! mean per-iteration times over `sample_size` samples — enough to compare
//! kernels and catch order-of-magnitude regressions.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching upstream's `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            target_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.target_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: also calibrates how many iterations fit one sample.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            f(&mut b);
            warm_iters += b.iters;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.target_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters_per_sample;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.sample_size,
            iters_per_sample,
        );
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a named group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion {
            sample_size: 3,
            warm_up: Duration::from_millis(5),
            target_time: Duration::from_millis(10),
        };
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
