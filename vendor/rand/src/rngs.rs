//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// One SplitMix64 step — used for seed expansion and available to callers
/// that need a cheap stateless mix.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++.
///
/// Not the upstream ChaCha12 `StdRng` — streams differ from real `rand` —
/// but deterministic in the seed, fast, and statistically solid for
/// simulation workloads (Blackman & Vigna, 2019).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro must not start from the all-zero state.
        if s == [0; 4] {
            let mut state = 0x9E37_79B9_7F4A_7C15;
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
        }
        StdRng { s }
    }
}

/// Alias kept for parity with upstream `rand`'s small generator.
pub type SmallRng = StdRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_in_the_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0x0);
        let draws: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn uniform_float_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(42);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.random_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
