//! Distributions: standard (full-domain) and uniform-in-range sampling.

use crate::RngCore;

/// Types that can be sampled uniformly over their whole domain
/// (`[0,1)` for floats), mirroring upstream's `StandardUniform`.
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0,1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0,1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Uniform-in-range sampling.
pub mod uniform {
    use super::StandardUniform;
    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that support uniform sampling over a caller-supplied range.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Uniform draw from `[lo, hi)`.
        fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
        /// Uniform draw from `[lo, hi]`.
        fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    macro_rules! uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo < hi, "random_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128;
                    // Widening-multiply range reduction (Lemire); the
                    // residual bias over a 64-bit draw is < 2^-64 per call,
                    // far below anything the simulations can observe.
                    let hi64 = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + hi64) as $t
                }

                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo <= hi, "random_range: empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let hi64 = ((rng.next_u64() as u128 * span) >> 64) as i128;
                    (lo as i128 + hi64) as $t
                }
            }
        )*};
    }

    uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                #[inline]
                fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo < hi, "random_range: empty range");
                    let u = <$t as StandardUniform>::sample_standard(rng);
                    let v = lo + (hi - lo) * u;
                    // Guard against rounding up to `hi` at the top of the
                    // range; `next_down` is correct for zero and negative
                    // `hi` too, where bit arithmetic would produce NaN or
                    // leave the range.
                    if v < hi { v } else { hi.next_down() }
                }

                #[inline]
                fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                    assert!(lo <= hi, "random_range: empty range");
                    lo + (hi - lo) * <$t as StandardUniform>::sample_standard(rng)
                }
            }
        )*};
    }

    uniform_float!(f32, f64);

    /// Range expressions accepted by [`Rng::random_range`](crate::Rng::random_range).
    pub trait SampleRange<T: SampleUniform> {
        /// Draws a single value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v: usize = r.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = r.random_range(-6..=6);
            assert!((-6..=6).contains(&w));
        }
    }

    #[test]
    fn int_ranges_reach_both_ends() {
        let mut r = StdRng::seed_from_u64(9);
        let draws: Vec<usize> = (0..2_000).map(|_| r.random_range(0..4)).collect();
        for target in 0..4 {
            assert!(draws.contains(&target), "never drew {target}");
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let v: f64 = r.random_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
            let u: f64 = r.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn float_ranges_ending_at_or_below_zero_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            // A subnormal-width range ending at +0.0 exercises the
            // rounding guard: the result must never be NaN or 0.0.
            let v: f64 = r.random_range(-1e-320..0.0);
            assert!(v.is_finite() && (-1e-320..0.0).contains(&v), "v = {v}");
            let w: f64 = r.random_range(-3.0..-1.0);
            assert!((-3.0..-1.0).contains(&w), "w = {w}");
        }
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut r = StdRng::seed_from_u64(8);
        let hits = (0..20_000).filter(|_| r.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
