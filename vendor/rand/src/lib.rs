//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.9 naming), vendored so the workspace builds without a registry.
//!
//! Only the surface the workspace actually uses is provided:
//!
//! * [`Rng`] with `random`, `random_range` and `random_bool`
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded via SplitMix64
//! * [`seq::SliceRandom`] with `shuffle` / `choose`
//!
//! The generator is *not* the upstream ChaCha12 `StdRng`; streams differ
//! from real `rand`, but every draw is fully deterministic in the seed,
//! which is the property the experiment engine relies on.

pub mod distr;
pub mod rngs;
pub mod seq;

use distr::uniform::{SampleRange, SampleUniform};
use distr::StandardUniform;

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's full domain (`[0,1)` for
    /// floats), matching `StandardUniform`.
    #[inline]
    fn random<T>(&mut self) -> T
    where
        T: StandardUniform,
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0,1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 as
    /// upstream `rand` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_exact_mut(8) {
            chunk.copy_from_slice(&rngs::splitmix64(&mut state).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}
