//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace builds without a registry.
//!
//! Supported surface (what the workspace's property tests use):
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header
//! * range strategies (`0u64..500`, `-1.0f32..=1.0`), [`any`],
//!   [`collection::vec`]
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`]
//!
//! Unlike upstream there is no shrinking and no persisted failure seeds:
//! inputs are drawn from a generator seeded by the test's name, so every
//! run of a given binary explores the same deterministic case set —
//! failures reproduce immediately under `cargo test`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Any, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// Everything a property-test file needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        ProptestConfig, Strategy,
    };
}

/// Per-block configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Fewer cases than upstream's 256: each case here often runs a whole
    /// simulated mission, and determinism means extra cases only re-cover
    /// the same seed space.
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Declares a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut proptest_rng =
                    $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for proptest_case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)*
                    // Render inputs before the body can move them.
                    let proptest_inputs: ::std::string::String =
                        [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),*].join(", ");
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    match result {
                        Ok(()) => {}
                        Err($crate::TestCaseError::Reject(_)) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => panic!(
                            "proptest case {proptest_case}/{} failed: {msg}\n  inputs: {proptest_inputs}",
                            config.cases,
                        ),
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
