//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Acceptable length specifications for [`vec`].
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.clone())
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.clone())
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

/// Generates vectors whose elements come from `element` and whose length
/// comes from `size` (a `usize` or a range of `usize`).
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
