//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::distr::uniform::SampleUniform;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree / shrinking: a strategy is just a
/// deterministic sampler over the test block's generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

/// Full-domain values of `T` (upstream's `Arbitrary` via `any`).
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T` over its full domain.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! any_standard {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
    )*};
}

any_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// A fixed, always-identical value (upstream's `Just`).
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}
