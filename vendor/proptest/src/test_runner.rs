//! The per-test deterministic generator and case-level error type.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The generator handed to strategies: `StdRng` seeded from the test name,
/// so a test's case set never depends on execution order or thread count.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeds the generator from `name` (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(hash))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the runner draws a fresh case.
    Reject(String),
    /// `prop_assert!`-family failure; the runner panics with this message.
    Fail(String),
}
