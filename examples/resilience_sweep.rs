//! Resilience sweep: the paper's Sec. 4 characterization in miniature —
//! inject uniform bit errors into the planner or the controller alone and
//! watch the heterogeneous tolerance emerge.
//!
//! ```sh
//! cargo run --release --example resilience_sweep
//! ```

use create_ai::agents::AgentSystem;
use create_ai::prelude::*;

fn main() {
    let system = AgentSystem::jarvis();
    let deployment = Deployment::new(&system, Precision::Int8);
    let reps = 16;

    println!("planner-only injection (controller golden), wooden:");
    println!("  {:>8}  {:>8}  {:>9}", "BER", "success", "avg steps");
    for ber in [1e-9, 2e-8, 1e-7, 1e-6] {
        let config = CreateConfig {
            planner_error: Some(ErrorSpec::uniform(ber)),
            ..CreateConfig::golden()
        };
        let p = run_point(&deployment, TaskId::Wooden, &config, reps, 1);
        println!(
            "  {:>8}  {:>7.1}%  {:>9.0}",
            sci(ber),
            p.success_rate * 100.0,
            p.avg_steps
        );
    }

    println!("\ncontroller-only injection (planner golden), wooden:");
    println!("  {:>8}  {:>8}  {:>9}", "BER", "success", "avg steps");
    for ber in [1e-6, 1e-4, 4e-4, 1e-3] {
        let config = CreateConfig {
            controller_error: Some(ErrorSpec::uniform(ber)),
            ..CreateConfig::golden()
        };
        let p = run_point(&deployment, TaskId::Wooden, &config, reps, 2);
        println!(
            "  {:>8}  {:>7.1}%  {:>9.0}",
            sci(ber),
            p.success_rate * 100.0,
            p.avg_steps
        );
    }

    println!(
        "\nThe controller tolerates ~4 decades more BER than the planner —\n\
         the heterogeneous resilience CREATE exploits (paper Fig. 5)."
    );
}
