//! Cross-platform example: run the OpenVLA planner preset on a LIBERO-style
//! manipulation task and the Octo controller preset on OXE-style tasks,
//! with CREATE protections under undervolting (paper Sec. 6.7).
//!
//! ```sh
//! cargo run --release --example cross_platform
//! ```

use create_ai::agents::presets::{ControllerPreset, PlannerPreset};
use create_ai::agents::AgentSystem;
use create_ai::prelude::*;

fn main() {
    // OpenVLA-preset planner paired with an Octo-preset controller on the
    // manipulation world (first run trains and caches the models).
    let system = AgentSystem::build(PlannerPreset::openvla(), ControllerPreset::octo());
    let deployment = Deployment::new(&system, Precision::Int8);

    // One session reuses the inference scratch across all eight trials.
    let mut session = MissionSession::new(&deployment);
    for task in [
        TaskId::Wine,
        TaskId::Alphabet,
        TaskId::Eggplant,
        TaskId::Coke,
    ] {
        let limits = MissionLimits::manipulation();
        let golden = session.run(
            task,
            &CreateConfig {
                limits,
                ..CreateConfig::golden()
            },
            5,
        );
        let protected = session.run(
            task,
            &CreateConfig {
                planner_ad: true,
                controller_ad: true,
                wr: true,
                planner_error: Some(ErrorSpec::voltage()),
                controller_error: Some(ErrorSpec::voltage()),
                planner_voltage: 0.83,
                voltage: VoltageControl::adaptive(EntropyPolicy::preset_c()),
                limits,
                ..CreateConfig::golden()
            },
            5,
        );
        println!(
            "{:<9} golden: success={} {:>3} steps | CREATE@0.83V: success={} {:>3} steps, \
             compute saving {:.1}%",
            task.to_string(),
            golden.success,
            golden.steps,
            protected.success,
            protected.steps,
            100.0 * (1.0 - protected.compute_j() / golden.compute_j())
        );
    }
}
