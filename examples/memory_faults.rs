//! Memory-resilience walkthrough: what happens when the *weight SRAM* rail
//! is undervolted, and what SECDED buys (the paper's Sec. 2.3 assumption
//! and Sec. 3.1 future work, implemented).
//!
//! ```sh
//! cargo run --release --example memory_faults
//! ```
//!
//! The controller's deployed INT8 weights pass through the modeled SRAM
//! at a scaled memory rail and pick up one retention-fault snapshot per
//! trial; missions then run on the faulted weights.

use create_ai::accel::sram::{MemoryFaultModel, Protection};
use create_ai::prelude::*;

const TRIALS: u32 = 10;

fn main() {
    let system = create_ai::agents::AgentSystem::jarvis();
    let deployment = Deployment::new(&system, Precision::Int8);
    let model = MemoryFaultModel::new();

    println!("SRAM retention-fault model (per-bit upset probability):");
    for &v in &[0.90, 0.80, 0.70, 0.60] {
        println!("  {v:.2} V -> {:.2e}", model.upset_prob(v));
    }
    println!();
    println!("controller weight buffer on a scaled memory rail ({TRIALS} trials each):");
    println!(
        "{:>10} {:>10} {:>9} {:>12} {:>11} {:>13}",
        "mem rail", "protect", "success", "bits upset", "corrected", "uncorrectable"
    );
    for &v in &[0.85, 0.74, 0.66] {
        for protection in [Protection::None, Protection::Secded] {
            let mem = MemoryConfig::new(v, protection);
            let point = run_memory_point(
                &deployment,
                TaskId::Wooden,
                &CreateConfig::golden(),
                MemTarget::Controller,
                &mem,
                TRIALS,
                0xF00D,
            );
            println!(
                "{:>9.2}V {:>10} {:>8.0}% {:>12} {:>11} {:>13}",
                v,
                protection.to_string(),
                100.0 * point.sweep.success_rate,
                point.stats.bits_upset,
                point.stats.words_corrected,
                point.stats.words_detected,
            );
        }
    }
    println!();
    println!(
        "SECDED holds task quality at voltages where raw storage fails, for\n\
         {:.1}% storage and {:.0}% read-energy overhead — the quantified\n\
         version of the paper's \"memory faults can be effectively mitigated\n\
         by ECC\".",
        100.0 * Protection::Secded.storage_overhead(),
        100.0 * Protection::Secded.read_energy_overhead(),
    );
}
