//! Mission walk-through: watch a full `iron` mission with per-phase
//! telemetry — the plan the LLM planner decodes, every subtask transition,
//! the controller's entropy, and the voltage the adaptive policy commands.
//!
//! ```sh
//! cargo run --release --example mission_walkthrough
//! ```

use create_ai::agents::AgentSystem;
use create_ai::prelude::*;

fn main() {
    let system = AgentSystem::jarvis();
    let deployment = Deployment::new(&system, Precision::Int8);

    // Decode and show the plan first.
    let mut accel = create_ai::accel::Accelerator::ideal(0);
    let plan = deployment.planner.decode(&mut accel, TaskId::Iron, &[]);
    println!(
        "planner decomposition for `iron` ({} subtasks):",
        plan.len()
    );
    for (i, st) in plan.iter().enumerate() {
        println!("  {:>2}. {st}", i + 1);
    }

    // Run the mission with traces and adaptive voltage scaling.
    let config = CreateConfig {
        voltage: VoltageControl::adaptive(EntropyPolicy::preset_c()),
        record_traces: true,
        ..CreateConfig::golden()
    };
    let out = run_trial(&deployment, TaskId::Iron, &config, 3);
    println!(
        "\nmission: success={} steps={} plans={} energy={:.2} J",
        out.success,
        out.steps,
        out.plans,
        out.energy_j()
    );

    // Summarize the entropy/voltage telemetry in windows of 20 steps.
    println!("\n step-window   mean-entropy  min-voltage  phase");
    println!(" ---------------------------------------------------");
    for (w, chunk) in out.entropy_trace.chunks(20).enumerate() {
        let mean: f32 = chunk.iter().sum::<f32>() / chunk.len() as f32;
        let v_lo = out.voltage_trace[w * 20..w * 20 + chunk.len()]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let phase = if mean < 0.4 {
            "critical (interaction streaks)"
        } else if mean > 1.0 {
            "non-critical (roaming)"
        } else {
            "mixed"
        };
        println!(
            "  {:>4}-{:<4}    {mean:>8.3}     {v_lo:>6.2} V   {phase}",
            w * 20,
            w * 20 + chunk.len() - 1
        );
    }
    println!(
        "\neffective controller voltage: {:.3} V (vs 0.90 V nominal)",
        out.effective_voltage()
    );
}
