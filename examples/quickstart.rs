//! Quickstart: load the trained JARVIS-1 testbed, undervolt the chip, turn
//! the CREATE protections on, and run one mission end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The first run trains the planner/controller/predictor from scratch
//! (~2 minutes) and caches the weights under `results/cache/`.

use create_ai::prelude::*;

fn main() {
    // 1. Train or load the agent stack (planner + controller + predictor).
    let system = create_ai::agents::AgentSystem::jarvis();
    let deployment = Deployment::new(&system, Precision::Int8);

    // 2. Golden reference: nominal voltage, no errors.
    let golden = run_trial(&deployment, TaskId::Wooden, &CreateConfig::golden(), 42);
    println!(
        "golden   : success={} steps={:<4} energy={:.2} J",
        golden.success,
        golden.steps,
        golden.energy_j()
    );

    // 3. Aggressive undervolting without protection: timing errors corrupt
    //    the planner's GEMMs and the mission degrades.
    let raw = run_trial(
        &deployment,
        TaskId::Wooden,
        &CreateConfig::undervolted(0.84),
        42,
    );
    println!(
        "0.84 V   : success={} steps={:<4} energy={:.2} J (unprotected)",
        raw.success,
        raw.steps,
        raw.energy_j()
    );

    // 4. Same voltage with the full CREATE stack: anomaly detection,
    //    weight-rotation-enhanced planning, autonomy-adaptive voltage
    //    scaling driven by the entropy predictor.
    let config = CreateConfig::undervolted(0.84).with_full_create(EntropyPolicy::preset_c());
    let protected = run_trial(&deployment, TaskId::Wooden, &config, 42);
    println!(
        "CREATE   : success={} steps={:<4} energy={:.2} J (effective {:.3} V, {} LDO switches)",
        protected.success,
        protected.steps,
        protected.energy_j(),
        protected.effective_voltage(),
        protected.ldo_switches
    );
    println!(
        "compute-energy saving vs golden: {:.1}%",
        100.0 * (1.0 - protected.compute_j() / golden.compute_j())
    );
}
