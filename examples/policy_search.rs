//! Entropy→voltage policy search (the Sec. 6.5 procedure): evaluate a grid
//! of candidate policies on `wooden`, print the Pareto frontier over
//! (effective voltage, success rate), and compare with the six presets.
//!
//! ```sh
//! cargo run --release --example policy_search           # 24 candidates
//! CREATE_POLICY_CANDIDATES=144 cargo run --release --example policy_search
//! ```

use create_ai::agents::AgentSystem;
use create_ai::prelude::*;

fn main() {
    let system = AgentSystem::jarvis();
    let deployment = Deployment::new(&system, Precision::Int8);
    let reps = 12;
    let limit: usize = std::env::var("CREATE_POLICY_CANDIDATES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);

    let candidates = EntropyPolicy::search_candidates();
    let step = (candidates.len() / limit).max(1);
    println!(
        "evaluating {} of {} candidates (controller hw errors + AD)...",
        candidates.len().div_ceil(step),
        candidates.len()
    );

    let mut results: Vec<(EntropyPolicy, f64, f64)> = Vec::new();
    for policy in candidates.into_iter().step_by(step) {
        let config = CreateConfig {
            controller_error: Some(ErrorSpec::voltage()),
            controller_ad: true,
            voltage: VoltageControl::adaptive(policy.clone()),
            ..CreateConfig::golden()
        };
        let p = run_point(&deployment, TaskId::Wooden, &config, reps, 0x90);
        results.push((policy, p.effective_voltage, p.success_rate));
    }

    // Pareto frontier: no other policy has both lower voltage and higher SR.
    results.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    println!(
        "\n  {:<10} {:>10} {:>9}  pareto",
        "policy", "eff volt", "success"
    );
    let mut best_sr = -1.0f64;
    for (policy, v_eff, sr) in results.iter().rev() {
        let pareto = *sr > best_sr;
        if pareto {
            best_sr = *sr;
        }
        println!(
            "  {:<10} {:>8.3} V {:>8.1}%  {}",
            policy.name(),
            v_eff,
            sr * 100.0,
            if pareto { "*" } else { "" }
        );
    }
    println!("\npreset policies for reference:");
    for p in EntropyPolicy::presets() {
        println!("  {p}");
    }
}
